"""Pluggable execution backends for the sweep harness.

A backend executes :class:`~repro.harness.spec.SweepPoint` s.  The core
API is :meth:`ExecutionBackend.run_iter`, which yields ``(index, result)``
pairs **as points complete** (in whatever order the backend finishes
them), plus :meth:`ExecutionBackend.cancel`, which abandons whatever has
not completed yet; :meth:`ExecutionBackend.run` is a shim over
``run_iter`` that reassembles the results **in declaration order** — that
ordering contract is what keeps rendered tables byte-identical across
backends and worker counts.  Four implementations ship:

- :class:`SerialBackend` — in-process, one point at a time.  The library
  and unit-test default.
- :class:`ProcessPoolBackend` — a ``multiprocessing`` pool with
  as-completed dispatch (one task per point, no ``map`` chunking), so a
  single slow point no longer straggles the whole sweep behind it.
- :class:`DistributedBackend` — a TCP coordinator that streams points to
  workers started with ``repro worker --connect HOST:PORT`` (possibly on
  other hosts).  Each worker advertises a *slot* count in its ``hello``
  frame and the coordinator pipelines up to that many points per
  connection, matching the (possibly out-of-order) replies back by
  ``task_id``.  Points lost to a dying worker — all of its in-flight
  tasks, not just one — are retried on the survivors; results are still
  merged in declaration order.
- :class:`~repro.service.client.ServiceBackend` (``--backend service``) —
  submits the points as one job to an always-on ``repro serve`` fleet and
  streams the per-point results back (see :mod:`repro.service`).

A point whose *function* raises does not tear the sweep down from inside a
worker: every backend returns a :class:`PointFailure` in that point's slot
and :class:`~repro.harness.runner.SweepRunner` raises a
:class:`~repro.harness.spec.HarnessError` naming the point.

Backends only execute; cache lookups and stores stay on the coordinator
side (in the runner), so remote workers never touch ``.repro-cache/``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import socket
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.harness.spec import HarnessError, PointResult, SweepPoint, execute_point
from repro.harness.wire import (
    decode_result,
    encode_point,
    hello_slots,
    parse_address,
    recv_frame,
    send_frame,
)

#: Environment variable naming the CLI's default backend.
BACKEND_ENV = "REPRO_BACKEND"
#: Environment variable naming the CLI's default coordinator address.
BIND_ENV = "REPRO_BIND"
#: Environment variable naming the sweep-service address clients dial.
SERVICE_ENV = "REPRO_SERVICE"
#: The coordinator/service address the CLI uses unless told otherwise.
DEFAULT_BIND = "127.0.0.1:7421"

BACKEND_NAMES = ("serial", "process", "distributed", "service")


@dataclass
class PointFailure:
    """A point a backend could not produce a result for.

    Carried in the result list in the failed point's slot so declaration
    order survives even partial sweeps; the runner turns it into a
    :class:`~repro.harness.spec.HarnessError` naming the point.
    """

    spec: str
    point_id: str
    error: str


BackendResult = Union[PointResult, PointFailure]


@dataclass
class WorkerRunStats:
    """Coordinator-side throughput record of one worker connection's run.

    ``busy_s`` sums the dispatch-to-result duration of every point the
    connection completed (a multi-slot worker can accumulate more busy
    task-seconds than wall-seconds); ``wall_s`` is how long the connection
    served the run.  Exposed per run as
    :attr:`DistributedBackend.last_run_worker_stats` and printed by the
    CLI under ``--stats``.
    """

    worker: str
    slots: int
    points: int
    busy_s: float
    wall_s: float

    @property
    def points_per_s(self) -> float:
        """Completed points per wall-clock second of connection service."""
        return self.points / self.wall_s if self.wall_s > 0 else 0.0


class ExecutionBackend:
    """Protocol for sweep-point executors.

    Subclasses implement :meth:`run_iter` (preferred — results stream out
    as points complete, which is what lets the runner write cache entries
    incrementally and lets callers stop early via :meth:`cancel`) or the
    legacy :meth:`run`; each has a default implementation in terms of the
    other, so implementing either one is enough.  ``name`` appears in
    error messages and the CLI's per-sweep summary line.
    """

    name = "abstract"
    _cancelled = False

    def run_iter(self, points: List[SweepPoint]
                 ) -> Iterator[Tuple[int, BackendResult]]:
        """Yield ``(index, result)`` pairs as points complete.

        ``index`` is the point's position in ``points``; yield order is
        *completion* order, which backends make no promises about.  After
        :meth:`cancel`, the iterator stops yielding — points still in
        flight are abandoned (their eventual results dropped) and points
        never dispatched are simply not run.
        """
        if type(self).run is ExecutionBackend.run:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither run() nor "
                f"run_iter()")
        # Legacy subclass: only run() is overridden.  Declaration order
        # doubles as completion order.
        yield from enumerate(self.run(points))

    def run(self, points: List[SweepPoint]) -> List[BackendResult]:
        """Execute every point; results in declaration order.

        A shim over :meth:`run_iter`.  Points the iterator never yielded
        (a :meth:`cancel` mid-run, or a buggy backend) come back as
        :class:`PointFailure` s so the list always matches ``points``
        slot-for-slot.
        """
        results: List[Optional[BackendResult]] = [None] * len(points)
        for index, result in self.run_iter(points):
            if 0 <= index < len(results):
                results[index] = result
        for index, result in enumerate(results):
            if result is None:
                point = points[index]
                results[index] = PointFailure(
                    spec=point.spec, point_id=point.point_id,
                    error="point was cancelled before it completed")
        return results  # type: ignore[return-value]

    def cancel(self) -> None:
        """Abandon the sweep: stop dispatching, drop in-flight points.

        Takes effect at the current :meth:`run_iter` iteration's next
        check; already-yielded results are unaffected.  Safe to call from
        another thread (the design point: an early-stopping search or a
        client disconnect cancels a sweep its consumer is blocked on).
        """
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been requested on this backend."""
        return self._cancelled

    def reset(self) -> None:
        """Re-arm the backend after a :meth:`cancel`, for another run.

        :meth:`cancel` deliberately poisons the backend — every subsequent
        :meth:`run_iter` stops immediately — so a late cancel racing the
        end of one sweep cannot silently leak into an unrelated one.  A
        caller that cancels *on purpose* and intends to keep using the
        backend (the successive-halving search drops a rung's losers, then
        dispatches the next rung on the same worker fleet) calls ``reset``
        between runs.  Must not be called while a ``run_iter`` is being
        consumed.
        """
        self._cancelled = False

    def close(self) -> None:
        """Release any long-lived resources (workers, sockets)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _failure(point: SweepPoint, error: BaseException) -> PointFailure:
    return PointFailure(spec=point.spec, point_id=point.point_id,
                        error=f"{type(error).__name__}: {error}")


def _run_serially(backend: ExecutionBackend, points: List[SweepPoint]
                  ) -> Iterator[Tuple[int, BackendResult]]:
    """In-process point loop shared by the serial and one-job pool paths.

    Checks ``backend``'s cancel flag between points, so cancelling an
    in-process sweep stops it at the next point boundary.
    """
    for index, point in enumerate(points):
        if backend.cancelled:
            return
        try:
            yield index, execute_point(point)
        except Exception as error:  # noqa: BLE001 - reported per point
            yield index, _failure(point, error)


class SerialBackend(ExecutionBackend):
    """Execute every point in the calling process, one after another."""

    name = "serial"

    def run_iter(self, points: List[SweepPoint]
                 ) -> Iterator[Tuple[int, BackendResult]]:
        return _run_serially(self, points)


def pool_context() -> "multiprocessing.context.BaseContext":
    """The ``multiprocessing`` context local point pools run on.

    Shared by :class:`ProcessPoolBackend` and the worker's ``--jobs`` pool
    so both prefer ``fork`` where the platform offers it (points and their
    kwargs are already in memory; no re-import needed) and fall back to
    the platform default elsewhere.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class ProcessPoolBackend(ExecutionBackend):
    """Fan points out over a local ``multiprocessing`` pool.

    Each point is submitted as its own task (``apply_async``), so idle
    workers pull the next pending point as soon as they finish — unlike
    ``pool.map``, whose chunked dispatch can leave one worker grinding
    through a chunk of slow points while the rest of the pool sits idle.
    """

    name = "process"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run_iter(self, points: List[SweepPoint]
                 ) -> Iterator[Tuple[int, BackendResult]]:
        if self.jobs == 1 or len(points) <= 1:
            yield from _run_serially(self, points)
            return
        context = pool_context()
        workers = min(self.jobs, len(points))
        # Completion-order delivery: every task posts its (index, payload)
        # to this queue from the pool's result-handler thread, so results
        # stream out as they finish instead of in declaration order.
        completions: "queue.Queue[Tuple[int, object]]" = queue.Queue()
        with context.Pool(processes=workers) as pool:
            for index, point in enumerate(points):
                pool.apply_async(
                    execute_point, (point,),
                    callback=lambda result, index=index:
                        completions.put((index, result)),
                    error_callback=lambda error, index=index:
                        completions.put((index, error)))
            received = 0
            while received < len(points):
                if self.cancelled:
                    return  # the with-block terminates the pool's children
                try:
                    index, payload = completions.get(timeout=0.05)
                except queue.Empty:
                    continue
                received += 1
                if isinstance(payload, BaseException):
                    yield index, _failure(points[index], payload)
                else:
                    yield index, payload  # type: ignore[misc]


# --------------------------------------------------------------------------- #
# Distributed backend
# --------------------------------------------------------------------------- #
def enable_keepalive(conn: socket.socket) -> None:
    """Make a dead worker *host* surface as a connection error.

    A worker process that crashes sends a FIN/RST and is requeued
    immediately; a host that vanishes (power loss, network partition)
    sends nothing, so without keepalive the serve thread would block in
    ``recv`` forever.  The parameters below detect that within ~a minute
    without bounding how long a legitimate point may compute.
    """
    conn.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for option, value in (("TCP_KEEPIDLE", 30), ("TCP_KEEPINTVL", 10),
                          ("TCP_KEEPCNT", 3)):
        if hasattr(socket, option):  # platform-dependent
            conn.setsockopt(socket.IPPROTO_TCP, getattr(socket, option), value)


def _worker_label(conn: socket.socket, hello: "dict") -> str:
    """A human-readable identity for one worker connection.

    Combines the TCP peer address with the pid the worker's ``hello``
    advertised, so two workers on the same host are distinguishable in the
    ``--stats`` per-worker summary.
    """
    try:
        host, port = conn.getpeername()[:2]
        peer = f"{host}:{port}"
    except OSError:
        peer = "worker"
    pid = hello.get("pid")
    if isinstance(pid, int) and not isinstance(pid, bool):
        return f"{peer} pid={pid}"
    return peer


class _RunState:
    """Bookkeeping for one :meth:`DistributedBackend.run` call."""

    def __init__(self, points: List[SweepPoint], max_retries: int) -> None:
        self.points = points
        self.max_retries = max_retries
        self.results: List[Optional[BackendResult]] = [None] * len(points)
        self.attempts = [0] * len(points)
        self.tasks: "queue.Queue[Optional[int]]" = queue.Queue()
        for index in range(len(points)):
            self.tasks.put(index)
        # Completion events in completion order, consumed by run_iter.
        # Each carries the label of the worker that computed the result
        # (None for coordinator-side failures), which provenance records.
        self.events: "queue.Queue[Tuple[int, BackendResult, Optional[str]]]" \
            = queue.Queue()
        self.lock = threading.Lock()
        self.outstanding = len(points)
        self.active_workers = 0
        self.sessions: List["_WorkerSession"] = []
        self.done = threading.Event()
        if not points:
            self.done.set()

    def register(self, session: "_WorkerSession", admitted: bool) -> bool:
        """Register a worker session, unless the run has already drained.

        ``admitted`` marks the initial batch :meth:`admit_batch` already
        counted; a mid-run joiner (``admitted=False``) is admitted here.
        Admission, the drain check and the session list share one lock, so
        the sentinel count ``_release`` captures always covers every
        admitted session, and :meth:`join_sessions` always sees every
        session that was admitted before the drain.
        """
        with self.lock:
            if not admitted:
                if self.outstanding == 0:
                    return False
                self.active_workers += 1
            self.sessions.append(session)
            return True

    def admit_batch(self, count: int) -> None:
        """Count the run's initial workers before any serve thread starts.

        Admitting the whole batch atomically — instead of one-by-one as
        each serve thread spawns — closes the race where the first worker
        dies (requeueing its point and decrementing ``active_workers`` to
        zero) before its siblings were admitted, which made
        :meth:`worker_exited` declare the run orphaned and fail every
        remaining point even though a healthy worker was about to start.
        """
        with self.lock:
            self.active_workers += count

    def join_sessions(self) -> None:
        with self.lock:
            sessions = list(self.sessions)
        for session in sessions:
            session.join()

    def complete(self, index: int, result: BackendResult,
                 worker: Optional[str] = None) -> None:
        with self.lock:
            if self.results[index] is not None:
                return
            self.results[index] = result
            self.events.put((index, result, worker))
            self.outstanding -= 1
            finished = self.outstanding == 0
            workers = self.active_workers
        if finished:
            self._release(workers)

    def cancel_pending(self) -> None:
        """Abandon every unfinished point, completing it as cancelled.

        In-flight points cannot be recalled from their workers; their
        eventual ``result`` frames arrive against an already-completed
        index and are dropped by :meth:`complete`'s idempotence guard,
        which also returns the connection's credit so the worker parks
        cleanly for the next run.
        """
        with self.lock:
            unfinished = [index for index, result in enumerate(self.results)
                          if result is None]
        for index in unfinished:
            point = self.points[index]
            self.complete(index, PointFailure(
                spec=point.spec, point_id=point.point_id,
                error="point was cancelled before it completed"))

    def requeue(self, index: int) -> None:
        """A worker died mid-point: retry elsewhere, or give up on it."""
        with self.lock:
            if self.results[index] is not None:
                return
            self.attempts[index] += 1
            exhausted = self.attempts[index] > self.max_retries
        if exhausted:
            point = self.points[index]
            self.complete(index, PointFailure(
                spec=point.spec, point_id=point.point_id,
                error=f"worker connection lost {self.attempts[index]} times"))
        else:
            self.tasks.put(index)

    def worker_exited(self) -> None:
        with self.lock:
            self.active_workers -= 1
            orphaned = self.active_workers == 0 and self.outstanding > 0
        if orphaned:
            # Nobody left to execute the remaining points; fail them so the
            # coordinator reports the loss instead of hanging forever.  The
            # last completion sets ``done`` via ``_release``.
            for index, result in enumerate(self.results):
                if result is None:
                    point = self.points[index]
                    self.complete(index, PointFailure(
                        spec=point.spec, point_id=point.point_id,
                        error="all workers disconnected before the point ran"))

    def _release(self, workers: int) -> None:
        for _ in range(max(workers, 1)):
            self.tasks.put(None)  # wake idle sender threads so they park
        self.done.set()


class _WorkerSession:
    """One worker connection serving one run: a sender/receiver thread pair.

    The sender pulls task indices off the shared queue and writes ``point``
    frames whenever the connection has a free credit; the receiver reads
    ``result`` frames (in whatever order the worker finishes them), matches
    them back by ``task_id`` and returns the credit.  Splitting the two
    directions onto separate threads is what lets a multi-slot worker hold
    several points in flight on a single TCP connection.

    Exactly one of two finishes happens, guarded by ``_finished``:

    - *park* — the run drained and every in-flight reply arrived; the
      connection goes back to the backend's idle pool for the next run.
    - *fail* — either direction hit a connection error; all in-flight
      tasks are requeued onto the surviving workers and the socket closed.
    """

    def __init__(self, backend: "DistributedBackend", conn: socket.socket,
                 slots: int, state: _RunState, label: str = "worker") -> None:
        self.backend = backend
        self.conn = conn
        self.slots = slots
        self.state = state
        self.label = label
        self.cv = threading.Condition()
        self.credits = slots
        self.inflight: "set[int]" = set()
        self.dead = False
        self.sender_done = False
        self._finished = False
        # Throughput bookkeeping (guarded by cv): dispatch timestamps of
        # in-flight tasks, completed-point count and summed task durations.
        self._dispatched_at: "dict[int, float]" = {}
        self._points_done = 0
        self._busy_s = 0.0
        self._started_at = time.monotonic()
        self._sender = threading.Thread(target=self._send_loop,
                                        name="repro-send", daemon=True)
        self._receiver = threading.Thread(target=self._recv_loop,
                                          name="repro-recv", daemon=True)

    def start(self) -> None:
        self._sender.start()
        self._receiver.start()

    def join(self) -> None:
        self._sender.join()
        self._receiver.join()

    # ------------------------------------------------------------------ #
    # Sender: tasks -> point frames, gated by credits
    # ------------------------------------------------------------------ #
    def _send_loop(self) -> None:
        state = self.state
        while True:
            with self.cv:
                while self.credits == 0 and not self.dead:
                    self.cv.wait()
                if self.dead:
                    return
            try:
                # A short poll rather than a blocking get: a session whose
                # receiver already failed must not sit here forever (or
                # steal a task for a dead socket) while the run continues
                # on the survivors.
                index = state.tasks.get(timeout=0.05)
            except queue.Empty:
                continue
            if index is None:
                with self.cv:
                    self.sender_done = True
                    self.cv.notify_all()
                return
            point = state.points[index]
            try:
                frame = {"type": "point", "task_id": index,
                         "point": encode_point(point)}
            except Exception as error:  # noqa: BLE001
                # An unpicklable point is the point's fault, not the
                # worker's: record the failure so the run still drains.
                state.complete(index, _failure(point, error))
                continue
            with self.cv:
                if self.dead:
                    # _fail already requeued the in-flight set; this task
                    # was never dispatched, so hand it back untouched.
                    state.tasks.put(index)
                    return
                self.credits -= 1
                self.inflight.add(index)
                self._dispatched_at[index] = time.monotonic()
                self.cv.notify_all()
            try:
                send_frame(self.conn, frame)
            except (OSError, ConnectionError):
                self._fail()
                return

    # ------------------------------------------------------------------ #
    # Receiver: result frames -> completions, returning credits
    # ------------------------------------------------------------------ #
    def _recv_loop(self) -> None:
        state = self.state
        while True:
            with self.cv:
                # Only read the socket while a reply is actually owed:
                # recv on an idle connection would block past the end of
                # the run and pin a parked worker to a finished sweep.
                while not self.inflight and not self.sender_done \
                        and not self.dead:
                    self.cv.wait()
                if self.dead:
                    return
                if not self.inflight and self.sender_done:
                    break  # run drained for this worker
            try:
                reply = recv_frame(self.conn)
                if reply is None:
                    raise ConnectionError("worker closed the connection")
            except (OSError, ConnectionError, ValueError):
                self._fail()
                return
            if reply.get("type") != "result":
                continue  # stray frame; the reply we are owed is still due
            task_id = reply.get("task_id")
            if not isinstance(task_id, int) or isinstance(task_id, bool):
                continue  # malformed reply; the owed result is still due
            with self.cv:
                known = task_id in self.inflight
                if known:
                    self.inflight.discard(task_id)
                    self.credits += 1
                    dispatched = self._dispatched_at.pop(task_id, None)
                    if dispatched is not None:
                        self._busy_s += time.monotonic() - dispatched
                    self._points_done += 1
                    self.cv.notify_all()
            if not known:
                continue  # duplicate or stale task_id; drop it
            point = state.points[task_id]
            if reply.get("ok"):
                try:
                    result: BackendResult = decode_result(
                        str(reply.get("result", "")))
                except Exception as error:  # noqa: BLE001
                    result = _failure(point, error)
                state.complete(task_id, result, worker=self.label)
            else:
                state.complete(task_id, PointFailure(
                    spec=point.spec, point_id=point.point_id,
                    error=str(reply.get("error", "unknown worker error"))),
                    worker=self.label)
        self._park()

    # ------------------------------------------------------------------ #
    # Finishes
    # ------------------------------------------------------------------ #
    def _fail(self) -> None:
        """The connection died: requeue every in-flight task, once."""
        with self.cv:
            if self._finished:
                return
            self._finished = True
            self.dead = True
            pending = sorted(self.inflight)
            self.inflight.clear()
            self.cv.notify_all()
        try:
            self.conn.close()  # unblocks whichever thread is still in I/O
        except OSError:
            pass
        for index in pending:
            self.state.requeue(index)
        self.backend._record_worker_stats(self._snapshot_stats())
        self.state.worker_exited()

    def _park(self) -> None:
        """The run drained with the connection healthy: re-idle it."""
        with self.cv:
            if self._finished:
                return
            self._finished = True
        self.backend._record_worker_stats(self._snapshot_stats())
        self.backend._park(self.conn, self.slots, self.label)
        self.state.worker_exited()

    def _snapshot_stats(self) -> WorkerRunStats:
        with self.cv:
            return WorkerRunStats(
                worker=self.label, slots=self.slots,
                points=self._points_done, busy_s=self._busy_s,
                wall_s=time.monotonic() - self._started_at)


class DistributedBackend(ExecutionBackend):
    """TCP coordinator streaming sweep points to remote workers.

    The coordinator listens on ``bind`` (``HOST:PORT``; port ``0`` picks a
    free port — read it back from :meth:`listen`).  Workers are separate
    processes, usually on other hosts, started with::

        repro worker --connect HOST:PORT --jobs N

    Each worker advertises ``N`` execution slots in its ``hello`` frame;
    the coordinator pipelines up to that many points per connection
    (credit-based: a new point is sent only when a result frees a slot)
    and matches the out-of-order replies back by ``task_id``.  A worker
    that disconnects has *all* of its in-flight points requeued onto the
    survivors (up to ``max_retries`` times per point).  Workers stay
    connected between :meth:`run` calls, so ``repro run all --backend
    distributed`` reuses the same fleet for every sweep; :meth:`close`
    sends them ``shutdown``.

    Parameters
    ----------
    bind:
        ``HOST:PORT`` to listen on (default ``127.0.0.1:0``).
    min_workers:
        How many workers to wait for before dispatching the first point.
    start_timeout:
        Seconds to wait for ``min_workers`` connections before failing.
    max_retries:
        Per-point retry budget for worker-loss requeues.
    """

    name = "distributed"

    def __init__(self, bind: str = "127.0.0.1:0", min_workers: int = 1,
                 start_timeout: float = 30.0, max_retries: int = 3) -> None:
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        self.bind = bind
        self.min_workers = min_workers
        self.start_timeout = start_timeout
        self.max_retries = max_retries
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._closed = False
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        # Idle pool entries: (conn, slots, label).
        self._idle: List[Tuple[socket.socket, int, str]] = []
        self._run_state: Optional[_RunState] = None
        self.address: Optional[Tuple[str, int]] = None
        self._worker_stats: List[WorkerRunStats] = []
        #: Per-worker throughput of the most recent :meth:`run`, in
        #: connection-finish order (see :class:`WorkerRunStats`).
        self.last_run_worker_stats: List[WorkerRunStats] = []
        #: run_iter index -> worker label, for provenance (see SweepRunner)
        self.last_point_workers: Dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    def listen(self) -> Tuple[str, int]:
        """Bind the coordinator socket and start accepting workers.

        Returns the actual ``(host, port)`` — useful with port ``0``.
        Idempotent: subsequent calls return the existing address.
        """
        if self._listener is not None:
            assert self.address is not None
            return self.address
        host, port = parse_address(self.bind)
        listener = socket.create_server((host, port))
        self._listener = listener
        self.address = (host, listener.getsockname()[1])
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True)
        self._accept_thread.start()
        return self.address

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError as error:
                if not self._closed:
                    print(f"repro coordinator: accept loop exiting "
                          f"unexpectedly ({type(error).__name__}: {error})",
                          file=sys.stderr, flush=True)
                return  # listener closed by close()
            if self._closed:
                # close() is waking this thread (possibly via its loopback
                # self-connect); drop the connection and let close() reap us.
                conn.close()
                return
            try:
                # A stalled or non-worker connection must not block the
                # registration of real workers behind it.
                conn.settimeout(10.0)
                hello = recv_frame(conn)
                conn.settimeout(None)
                enable_keepalive(conn)
            except (OSError, ConnectionError, ValueError) as error:
                print(f"repro coordinator: rejecting connection "
                      f"({type(error).__name__}: {error})",
                      file=sys.stderr, flush=True)
                conn.close()
                continue
            if not hello or hello.get("type") != "hello":
                print(f"repro coordinator: rejecting connection "
                      f"(first frame was not a hello: {hello!r})",
                      file=sys.stderr, flush=True)
                conn.close()
                continue
            slots = hello_slots(hello)
            label = _worker_label(conn, hello)
            with self._ready:
                if self._closed:
                    # close() ran while this hello was being read; don't
                    # strand the worker on a backend that will never serve.
                    conn.close()
                    return
                state = self._run_state
                if state is None:
                    self._idle.append((conn, slots, label))
                    self._ready.notify_all()
            if state is not None:
                # A worker joining mid-run (a late start, or a replacement
                # for one that died) is put to work immediately.
                self._start_session(conn, slots, state, admitted=False,
                                    label=label)

    def _wait_for_workers(self) -> List[Tuple[socket.socket, int, str]]:
        with self._ready:
            if not self._ready.wait_for(
                    lambda: len(self._idle) >= self.min_workers,
                    timeout=self.start_timeout):
                raise HarnessError(
                    f"distributed backend: only {len(self._idle)} of "
                    f"{self.min_workers} workers connected to "
                    f"{self.address[0]}:{self.address[1]} within "
                    f"{self.start_timeout:.0f}s — start them with "
                    f"'repro worker --connect HOST:PORT'")
            workers, self._idle = self._idle, []
            return workers

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run_iter(self, points: List[SweepPoint]
                 ) -> Iterator[Tuple[int, BackendResult]]:
        if not points:
            return
        self.listen()
        workers = self._wait_for_workers()
        state = _RunState(points, self.max_retries)
        with self._ready:
            # From here on, the accept loop routes new connections straight
            # into this run; also claim any that slipped into the idle pool
            # between the wait above and this point.
            self._run_state = state
            workers += self._idle
            self._idle = []
            self._worker_stats = []
        # Admit the whole initial batch before any session thread runs, so
        # one worker dying instantly cannot orphan the run while the rest
        # still await admission (see _RunState.admit_batch).
        state.admit_batch(len(workers))
        for conn, slots, label in workers:
            self._start_session(conn, slots, state, admitted=True, label=label)
        received = 0
        cancelled = False
        self.last_point_workers = {}
        try:
            while received < len(points):
                if self.cancelled:
                    # Stop dispatching and fail the remainder as cancelled;
                    # sessions drain on their own (late results for
                    # in-flight points are dropped, connections re-park for
                    # the next run) — deliberately not joined here, so
                    # cancel() does not block on a worker mid-computation.
                    cancelled = True
                    state.cancel_pending()
                    return
                try:
                    index, result, worker = state.events.get(timeout=0.1)
                except queue.Empty:
                    continue
                received += 1
                if worker is not None:
                    self.last_point_workers[index] = worker
                yield index, result
        finally:
            with self._ready:
                self._run_state = None
            if not cancelled and received >= len(points):
                state.join_sessions()
            with self._ready:
                self.last_run_worker_stats = list(self._worker_stats)

    def _start_session(self, conn: socket.socket, slots: int,
                       state: _RunState, admitted: bool,
                       label: str = "worker") -> Optional[_WorkerSession]:
        """Serve ``conn`` within the run, or re-idle it if the run drained."""
        session = _WorkerSession(self, conn, slots, state, label=label)
        if not state.register(session, admitted=admitted):
            self._park(conn, slots, label)
            return None
        session.start()
        return session

    def _record_worker_stats(self, stats: WorkerRunStats) -> None:
        with self._ready:
            self._worker_stats.append(stats)

    def _park(self, conn: socket.socket, slots: int,
              label: str = "worker") -> None:
        """Return a healthy connection to the idle pool for the next run."""
        with self._ready:
            closed = self._closed
            if not closed:
                self._idle.append((conn, slots, label))
                self._ready.notify_all()
        if closed:
            # close() already drained the idle pool; shut this worker down
            # directly rather than leaking it.
            try:
                send_frame(conn, {"type": "shutdown"})
            except OSError:
                pass
            conn.close()

    def close(self) -> None:
        """Shut down connected workers and stop listening.

        The accept thread is reaped *before* the listener's file
        descriptor is released: ``close()`` on a listening socket does not
        wake a thread blocked in ``accept()`` on it, so without the
        ``shutdown()``+``join`` below the thread would stay parked on the
        stale descriptor number — and once the OS reuses that number for a
        later backend's listener, the zombie thread would steal the new
        backend's worker connections (consuming their ``hello`` and
        parking them on this closed backend, where they are never served).
        """
        with self._ready:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn, _slots, _label in idle:
            try:
                send_frame(conn, {"type": "shutdown"})
            except OSError:
                pass
            conn.close()
        if self._listener is not None:
            try:
                self._listener.shutdown(socket.SHUT_RDWR)  # wakes accept()
            except OSError:
                pass  # BSD/macOS refuse shutdown() on a listening socket
            if self.address is not None:
                # Portable wake-up for platforms where the shutdown() above
                # did not interrupt a blocked accept(): a loopback
                # self-connect makes accept() return, and the loop exits on
                # the _closed flag.
                try:
                    socket.create_connection(self.address, timeout=1.0).close()
                except OSError:
                    pass
            if self._accept_thread is not None and \
                    self._accept_thread is not threading.current_thread():
                self._accept_thread.join(timeout=5.0)
            self._listener.close()
            self._listener = None
            self._accept_thread = None


# --------------------------------------------------------------------------- #
# Factory
# --------------------------------------------------------------------------- #
def default_bind() -> str:
    """The coordinator address the CLI uses unless told otherwise."""
    return os.environ.get(BIND_ENV, DEFAULT_BIND)


def default_service_address() -> str:
    """The ``repro serve`` address service clients dial unless told otherwise."""
    return os.environ.get(SERVICE_ENV, DEFAULT_BIND)


def create_backend(name: str, jobs: int = 1, bind: Optional[str] = None,
                   min_workers: int = 1, start_timeout: float = 30.0,
                   connect: Optional[str] = None) -> ExecutionBackend:
    """Build a backend from CLI-shaped arguments.

    ``name`` is one of ``serial``, ``process``, ``distributed`` or
    ``service`` (see ``BACKEND_NAMES``); the CLI defaults it from
    ``$REPRO_BACKEND``.  ``connect`` is the ``service`` backend's
    ``HOST:PORT`` of a running ``repro serve`` (default:
    ``$REPRO_SERVICE``, else the standard localhost address).

    ``jobs`` is validated here with the same ``ValueError`` the backend
    constructors raise, rather than silently clamped, so a bad ``--jobs``
    surfaces identically no matter which entry point it came through.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(jobs=jobs)
    if name == "distributed":
        return DistributedBackend(bind=bind or default_bind(),
                                  min_workers=min_workers,
                                  start_timeout=start_timeout)
    if name == "service":
        # Imported lazily: repro.service.client depends on this module.
        from repro.service.client import ServiceBackend

        return ServiceBackend(connect=connect or default_service_address())
    known = ", ".join(BACKEND_NAMES)
    raise HarnessError(f"unknown backend {name!r}; known backends: {known}")
