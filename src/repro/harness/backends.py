"""Pluggable execution backends for the sweep harness.

A backend turns a list of :class:`~repro.harness.spec.SweepPoint` s into a
list of :class:`~repro.harness.spec.PointResult` s **in declaration order**
— that ordering contract is what keeps rendered tables byte-identical
across backends and worker counts.  Three implementations ship:

- :class:`SerialBackend` — in-process, one point at a time.  The library
  and unit-test default.
- :class:`ProcessPoolBackend` — a ``multiprocessing`` pool with
  as-completed dispatch (one task per point, no ``map`` chunking), so a
  single slow point no longer straggles the whole sweep behind it.
- :class:`DistributedBackend` — a TCP coordinator that streams points to
  workers started with ``repro worker --connect HOST:PORT`` (possibly on
  other hosts).  Points lost to a dying worker are retried on the
  survivors; results are still merged in declaration order.

A point whose *function* raises does not tear the sweep down from inside a
worker: every backend returns a :class:`PointFailure` in that point's slot
and :class:`~repro.harness.runner.SweepRunner` raises a
:class:`~repro.harness.spec.HarnessError` naming the point.

Backends only execute; cache lookups and stores stay on the coordinator
side (in the runner), so remote workers never touch ``.repro-cache/``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import socket
import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.harness.spec import HarnessError, PointResult, SweepPoint, execute_point
from repro.harness.wire import (
    decode_result,
    encode_point,
    parse_address,
    recv_frame,
    send_frame,
)

#: Environment variable naming the CLI's default backend.
BACKEND_ENV = "REPRO_BACKEND"
#: Environment variable naming the CLI's default coordinator address.
BIND_ENV = "REPRO_BIND"
#: The coordinator address the CLI uses unless told otherwise.
DEFAULT_BIND = "127.0.0.1:7421"

BACKEND_NAMES = ("serial", "process", "distributed")


@dataclass
class PointFailure:
    """A point a backend could not produce a result for.

    Carried in the result list in the failed point's slot so declaration
    order survives even partial sweeps; the runner turns it into a
    :class:`~repro.harness.spec.HarnessError` naming the point.
    """

    spec: str
    point_id: str
    error: str


BackendResult = Union[PointResult, PointFailure]


class ExecutionBackend:
    """Protocol for sweep-point executors.

    Subclasses implement :meth:`run`; ``name`` appears in error messages
    and the CLI's per-sweep summary line.
    """

    name = "abstract"

    def run(self, points: List[SweepPoint]) -> List[BackendResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any long-lived resources (workers, sockets)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _failure(point: SweepPoint, error: BaseException) -> PointFailure:
    return PointFailure(spec=point.spec, point_id=point.point_id,
                        error=f"{type(error).__name__}: {error}")


class SerialBackend(ExecutionBackend):
    """Execute every point in the calling process, one after another."""

    name = "serial"

    def run(self, points: List[SweepPoint]) -> List[BackendResult]:
        results: List[BackendResult] = []
        for point in points:
            try:
                results.append(execute_point(point))
            except Exception as error:  # noqa: BLE001 - reported per point
                results.append(_failure(point, error))
        return results


class ProcessPoolBackend(ExecutionBackend):
    """Fan points out over a local ``multiprocessing`` pool.

    Each point is submitted as its own task (``apply_async``), so idle
    workers pull the next pending point as soon as they finish — unlike
    ``pool.map``, whose chunked dispatch can leave one worker grinding
    through a chunk of slow points while the rest of the pool sits idle.
    """

    name = "process"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(self, points: List[SweepPoint]) -> List[BackendResult]:
        if self.jobs == 1 or len(points) <= 1:
            return SerialBackend().run(points)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        workers = min(self.jobs, len(points))
        results: List[Optional[BackendResult]] = [None] * len(points)
        with context.Pool(processes=workers) as pool:
            handles = [pool.apply_async(execute_point, (point,))
                       for point in points]
            for index, (point, handle) in enumerate(zip(points, handles)):
                try:
                    results[index] = handle.get()
                except Exception as error:  # noqa: BLE001 - reported per point
                    results[index] = _failure(point, error)
        return results


# --------------------------------------------------------------------------- #
# Distributed backend
# --------------------------------------------------------------------------- #
def enable_keepalive(conn: socket.socket) -> None:
    """Make a dead worker *host* surface as a connection error.

    A worker process that crashes sends a FIN/RST and is requeued
    immediately; a host that vanishes (power loss, network partition)
    sends nothing, so without keepalive the serve thread would block in
    ``recv`` forever.  The parameters below detect that within ~a minute
    without bounding how long a legitimate point may compute.
    """
    conn.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for option, value in (("TCP_KEEPIDLE", 30), ("TCP_KEEPINTVL", 10),
                          ("TCP_KEEPCNT", 3)):
        if hasattr(socket, option):  # platform-dependent
            conn.setsockopt(socket.IPPROTO_TCP, getattr(socket, option), value)


class _RunState:
    """Bookkeeping for one :meth:`DistributedBackend.run` call."""

    def __init__(self, points: List[SweepPoint], max_retries: int) -> None:
        self.points = points
        self.max_retries = max_retries
        self.results: List[Optional[BackendResult]] = [None] * len(points)
        self.attempts = [0] * len(points)
        self.tasks: "queue.Queue[Optional[int]]" = queue.Queue()
        for index in range(len(points)):
            self.tasks.put(index)
        self.lock = threading.Lock()
        self.outstanding = len(points)
        self.active_workers = 0
        self.done = threading.Event()
        if not points:
            self.done.set()

    def try_admit(self) -> bool:
        """Register a serve thread, unless the run has already drained.

        Admission and the drain check share one lock, so the sentinel
        count ``_release`` captures always covers every admitted thread.
        """
        with self.lock:
            if self.outstanding == 0:
                return False
            self.active_workers += 1
            return True

    def complete(self, index: int, result: BackendResult) -> None:
        with self.lock:
            if self.results[index] is not None:
                return
            self.results[index] = result
            self.outstanding -= 1
            finished = self.outstanding == 0
            workers = self.active_workers
        if finished:
            self._release(workers)

    def requeue(self, index: int) -> None:
        """A worker died mid-point: retry elsewhere, or give up on it."""
        with self.lock:
            if self.results[index] is not None:
                return
            self.attempts[index] += 1
            exhausted = self.attempts[index] > self.max_retries
        if exhausted:
            point = self.points[index]
            self.complete(index, PointFailure(
                spec=point.spec, point_id=point.point_id,
                error=f"worker connection lost {self.attempts[index]} times"))
        else:
            self.tasks.put(index)

    def worker_exited(self) -> None:
        with self.lock:
            self.active_workers -= 1
            orphaned = self.active_workers == 0 and self.outstanding > 0
        if orphaned:
            # Nobody left to execute the remaining points; fail them so the
            # coordinator reports the loss instead of hanging forever.  The
            # last completion sets ``done`` via ``_release``.
            for index, result in enumerate(self.results):
                if result is None:
                    point = self.points[index]
                    self.complete(index, PointFailure(
                        spec=point.spec, point_id=point.point_id,
                        error="all workers disconnected before the point ran"))

    def _release(self, workers: int) -> None:
        for _ in range(max(workers, 1)):
            self.tasks.put(None)  # wake idle serve threads so they park
        self.done.set()


class DistributedBackend(ExecutionBackend):
    """TCP coordinator streaming sweep points to remote workers.

    The coordinator listens on ``bind`` (``HOST:PORT``; port ``0`` picks a
    free port — read it back from :meth:`listen`).  Workers are separate
    processes, usually on other hosts, started with::

        repro worker --connect HOST:PORT

    Each connected worker executes one point at a time; a worker that
    disconnects mid-point has its point requeued onto the survivors (up to
    ``max_retries`` times per point).  Workers stay connected between
    :meth:`run` calls, so ``repro run all --backend distributed`` reuses
    the same fleet for every sweep; :meth:`close` sends them ``shutdown``.

    Parameters
    ----------
    bind:
        ``HOST:PORT`` to listen on (default ``127.0.0.1:0``).
    min_workers:
        How many workers to wait for before dispatching the first point.
    start_timeout:
        Seconds to wait for ``min_workers`` connections before failing.
    max_retries:
        Per-point retry budget for worker-loss requeues.
    """

    name = "distributed"

    def __init__(self, bind: str = "127.0.0.1:0", min_workers: int = 1,
                 start_timeout: float = 30.0, max_retries: int = 3) -> None:
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        self.bind = bind
        self.min_workers = min_workers
        self.start_timeout = start_timeout
        self.max_retries = max_retries
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._closed = False
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._idle: List[socket.socket] = []
        self._run_state: Optional[_RunState] = None
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    def listen(self) -> Tuple[str, int]:
        """Bind the coordinator socket and start accepting workers.

        Returns the actual ``(host, port)`` — useful with port ``0``.
        Idempotent: subsequent calls return the existing address.
        """
        if self._listener is not None:
            assert self.address is not None
            return self.address
        host, port = parse_address(self.bind)
        listener = socket.create_server((host, port))
        self._listener = listener
        self.address = (host, listener.getsockname()[1])
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True)
        self._accept_thread.start()
        return self.address

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by close()
            try:
                # A stalled or non-worker connection must not block the
                # registration of real workers behind it.
                conn.settimeout(10.0)
                hello = recv_frame(conn)
                conn.settimeout(None)
                enable_keepalive(conn)
            except (OSError, ConnectionError, ValueError):
                conn.close()
                continue
            if not hello or hello.get("type") != "hello":
                conn.close()
                continue
            with self._ready:
                state = self._run_state
                if state is None:
                    self._idle.append(conn)
                    self._ready.notify_all()
            if state is not None:
                # A worker joining mid-run (a late start, or a replacement
                # for one that died) is put to work immediately.
                self._spawn_serve(conn, state)

    def _wait_for_workers(self) -> List[socket.socket]:
        with self._ready:
            if not self._ready.wait_for(
                    lambda: len(self._idle) >= self.min_workers,
                    timeout=self.start_timeout):
                raise HarnessError(
                    f"distributed backend: only {len(self._idle)} of "
                    f"{self.min_workers} workers connected to "
                    f"{self.address[0]}:{self.address[1]} within "
                    f"{self.start_timeout:.0f}s — start them with "
                    f"'repro worker --connect HOST:PORT'")
            workers, self._idle = self._idle, []
            return workers

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, points: List[SweepPoint]) -> List[BackendResult]:
        if not points:
            return []
        self.listen()
        workers = self._wait_for_workers()
        state = _RunState(points, self.max_retries)
        with self._ready:
            # From here on, the accept loop routes new connections straight
            # into this run; also claim any that slipped into the idle pool
            # between the wait above and this point.
            self._run_state = state
            workers += self._idle
            self._idle = []
        threads = [self._spawn_serve(conn, state) for conn in workers]
        try:
            state.done.wait()
        finally:
            with self._ready:
                self._run_state = None
        for thread in threads:
            if thread is not None:
                thread.join()
        assert all(result is not None for result in state.results)
        return list(state.results)  # type: ignore[arg-type]

    def _spawn_serve(self, conn: socket.socket,
                     state: _RunState) -> Optional[threading.Thread]:
        """Start a serve thread for ``conn``, or re-idle it if the run drained."""
        if not state.try_admit():
            with self._ready:
                self._idle.append(conn)
                self._ready.notify_all()
            return None
        thread = threading.Thread(target=self._serve, args=(conn, state),
                                  name="repro-serve", daemon=True)
        thread.start()
        return thread

    def _serve(self, conn: socket.socket, state: _RunState) -> None:
        """Feed one worker connection until the run drains or it dies."""
        alive = True
        try:
            while True:
                index = state.tasks.get()
                if index is None:
                    break  # run drained; park the connection for reuse
                point = state.points[index]
                try:
                    frame = {"type": "point", "task_id": index,
                             "point": encode_point(point)}
                except Exception as error:  # noqa: BLE001
                    # An unpicklable point is the point's fault, not the
                    # worker's: record the failure so the run still drains.
                    state.complete(index, _failure(point, error))
                    continue
                try:
                    send_frame(conn, frame)
                    reply = recv_frame(conn)
                    if reply is None:
                        raise ConnectionError("worker closed the connection")
                except (OSError, ConnectionError, ValueError):
                    alive = False
                    state.requeue(index)
                    conn.close()
                    return
                if reply.get("ok"):
                    try:
                        result: BackendResult = decode_result(
                            str(reply.get("result", "")))
                    except Exception as error:  # noqa: BLE001
                        result = _failure(point, error)
                    state.complete(index, result)
                else:
                    state.complete(index, PointFailure(
                        spec=point.spec, point_id=point.point_id,
                        error=str(reply.get("error", "unknown worker error"))))
        finally:
            state.worker_exited()
            if alive:
                with self._ready:
                    closed = self._closed
                    if not closed:
                        self._idle.append(conn)
                        self._ready.notify_all()
                if closed:
                    # close() already drained the idle pool; shut this
                    # worker down directly rather than leaking it.
                    try:
                        send_frame(conn, {"type": "shutdown"})
                    except OSError:
                        pass
                    conn.close()

    def close(self) -> None:
        """Shut down connected workers and stop listening."""
        with self._ready:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            try:
                send_frame(conn, {"type": "shutdown"})
            except OSError:
                pass
            conn.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None


# --------------------------------------------------------------------------- #
# Factory
# --------------------------------------------------------------------------- #
def default_bind() -> str:
    """The coordinator address the CLI uses unless told otherwise."""
    return os.environ.get(BIND_ENV, DEFAULT_BIND)


def create_backend(name: str, jobs: int = 1, bind: Optional[str] = None,
                   min_workers: int = 1,
                   start_timeout: float = 30.0) -> ExecutionBackend:
    """Build a backend from CLI-shaped arguments.

    ``name`` is one of ``serial``, ``process`` or ``distributed`` (see
    ``BACKEND_NAMES``); the CLI defaults it from ``$REPRO_BACKEND``.
    """
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(jobs=max(jobs, 1))
    if name == "distributed":
        return DistributedBackend(bind=bind or default_bind(),
                                  min_workers=min_workers,
                                  start_timeout=start_timeout)
    known = ", ".join(BACKEND_NAMES)
    raise HarnessError(f"unknown backend {name!r}; known backends: {known}")
