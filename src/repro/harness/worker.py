"""The ``repro worker`` process — executes sweep points for a coordinator.

A worker is the remote half of
:class:`~repro.harness.backends.DistributedBackend`::

    repro worker --connect HOST:PORT --jobs 8

It dials the coordinator (retrying while the coordinator is still coming
up, so workers and coordinator can be launched in any order), sends a
``hello`` frame advertising how many execution *slots* it has, then serves
points.  With one slot (``--jobs 1``) the worker executes each point
in-process before reading the next frame; with more, it fans points out
over a local ``multiprocessing`` pool and replies **out of order** as they
finish — the coordinator matches replies to points by ``task_id`` and
never keeps more than ``slots`` points outstanding on the connection.

``--jobs`` defaults to ``$REPRO_WORKER_JOBS``, else the machine's CPU
count, so a 32-core host contributes 32 cores to a sweep out of the box.

A point whose function raises is reported as ``ok: false`` — the *worker*
stays up; only a ``shutdown`` frame or a closed connection ends it.

The worker never touches the result cache; caching is coordinator-side.
"""

from __future__ import annotations

import os
import queue
import socket
import sys
import threading
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, Optional

from repro.harness.spec import execute_point
from repro.harness.wire import (
    PROTOCOL_VERSION,
    decode_point,
    encode_result,
    parse_address,
    recv_frame,
    send_frame,
)

#: Environment variable naming the default ``repro worker --jobs`` value.
WORKER_JOBS_ENV = "REPRO_WORKER_JOBS"


def default_worker_jobs() -> int:
    """Execution slots a worker offers unless ``--jobs`` says otherwise.

    ``$REPRO_WORKER_JOBS`` wins when set; otherwise every CPU the host
    has, so a many-core worker host is saturated by default.
    """
    env = os.environ.get(WORKER_JOBS_ENV)
    if env is not None:
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKER_JOBS_ENV} must be an integer, got {env!r}") from None
        if jobs < 1:
            raise ValueError(f"{WORKER_JOBS_ENV} must be >= 1, got {jobs}")
        return jobs
    return max(1, os.cpu_count() or 1)


def _log(message: str) -> None:
    print(f"repro worker[{os.getpid()}]: {message}", file=sys.stderr, flush=True)


def _connect(host: str, port: int, retry_seconds: float) -> socket.socket:
    """Dial the coordinator, retrying until ``retry_seconds`` elapse."""
    deadline = time.monotonic() + retry_seconds
    delay = 0.05
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError as error:
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    f"could not reach coordinator at {host}:{port} "
                    f"within {retry_seconds:.0f}s: {error}") from error
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


def execute_task(task_id: object, blob: str) -> Dict[str, object]:
    """Run one encoded point and build its ``result`` reply.

    A raising point function — or a result that cannot be pickled back,
    which would equally fail the ``multiprocessing`` backend — becomes an
    ``ok: false`` reply; the worker itself stays up.  Module-level so pool
    children can run it; everything in the reply is JSON-safe, so it also
    travels back from a pool child without a second pickling contract.
    """
    try:
        point = decode_point(blob)
        result = execute_point(point)
        return {"type": "result", "task_id": task_id, "ok": True,
                "result": encode_result(result)}
    except Exception:  # noqa: BLE001 - reported to the coordinator per point
        return {"type": "result", "task_id": task_id, "ok": False,
                "error": traceback.format_exc(limit=8)}


def _serve_inline(sock: socket.socket) -> int:
    """One-slot service: execute each point before reading the next frame."""
    served = 0
    while True:
        frame = recv_frame(sock)
        if frame is None:
            _log(f"coordinator closed the connection after {served} points")
            return 0
        kind = frame.get("type")
        if kind == "shutdown":
            _log(f"shutdown after {served} points")
            return 0
        if kind == "welcome":
            # A v3 coordinator (the sweep service) confirms the negotiated
            # protocol version; a v2 coordinator never sends one.
            _log(f"coordinator negotiated protocol v{frame.get('proto')}")
            continue
        if kind != "point":
            _log(f"ignoring unexpected {kind!r} frame")
            continue
        # frame.get, not frame[...]: a point frame missing its payload must
        # become an ok:false reply (execute_task fails to decode it), not a
        # worker crash — only shutdown or a closed connection ends a worker.
        send_frame(sock, execute_task(frame.get("task_id"),
                                      str(frame.get("point"))))
        served += 1


def _serve_pooled(sock: socket.socket, jobs: int) -> int:
    """Multi-slot service: points run on a local process pool.

    The receive loop stays dedicated to the socket so up to ``jobs``
    points are in flight at once; finished results are sent back from a
    single sender thread (only ever one writer per socket) in completion
    order, not dispatch order.

    ``execute_task`` converts every point-level failure into an
    ``ok: false`` reply, so a future carrying an *exception* means the
    pool infrastructure itself broke — a child killed outright by the OS
    (OOM, segfault) takes its sibling tasks' futures down with it via
    ``BrokenProcessPool``.  No trustworthy per-point reply is possible
    then, so the worker drops the connection instead: the coordinator
    requeues every in-flight point onto the surviving workers, the same
    recovery a crash of a whole single-slot worker process gets.
    """
    from repro.harness.backends import pool_context

    replies: "queue.Queue[Optional[Dict[str, object]]]" = queue.Queue()
    broken = threading.Event()

    def _on_done(future: "Future[Dict[str, object]]", task_id: object) -> None:
        error = future.exception()
        if error is None:
            replies.put(future.result())
            return
        _log(f"pool task {task_id!r} lost ({type(error).__name__}: {error}); "
             f"dropping the connection so in-flight points retry elsewhere")
        broken.set()
        try:
            sock.shutdown(socket.SHUT_RDWR)  # unblock the recv loop
        except OSError:
            pass

    # Created before the sender thread exists so the first forked children
    # inherit as few live threads as possible.
    executor = ProcessPoolExecutor(max_workers=jobs, mp_context=pool_context())

    def _send_loop() -> None:
        while True:
            reply = replies.get()
            if reply is None:
                return
            try:
                send_frame(sock, reply)
            except OSError:
                return  # recv loop sees the same dead socket and exits

    sender = threading.Thread(target=_send_loop, name="repro-worker-send",
                              daemon=True)
    sender.start()
    served = 0
    try:
        while True:
            frame = recv_frame(sock)
            if broken.is_set():
                raise ConnectionError(
                    "worker pool broke; abandoning the connection so "
                    "in-flight points are retried elsewhere")
            if frame is None:
                _log(f"coordinator closed the connection after {served} points")
                return 0
            kind = frame.get("type")
            if kind == "shutdown":
                # The coordinator only shuts down idle connections, so no
                # points are in flight; tear the pool down fast.
                _log(f"shutdown after {served} points")
                return 0
            if kind == "welcome":
                _log(f"coordinator negotiated protocol v{frame.get('proto')}")
                continue
            if kind != "point":
                _log(f"ignoring unexpected {kind!r} frame")
                continue
            task_id = frame.get("task_id")
            try:
                # frame.get, not frame[...]: a payload-less point frame is
                # the point's problem (execute_task replies ok:false), not
                # grounds to treat the pool as broken.
                future = executor.submit(execute_task, task_id,
                                         str(frame.get("point")))
            except Exception as error:  # noqa: BLE001 - BrokenProcessPool
                raise ConnectionError(
                    f"worker pool broke: {error}") from error
            future.add_done_callback(
                lambda done, task_id=task_id: _on_done(done, task_id))
            served += 1
    finally:
        replies.put(None)
        sender.join(timeout=5)
        executor.shutdown(wait=False, cancel_futures=True)


def run_worker(connect: str, retry_seconds: float = 30.0,
               jobs: Optional[int] = None) -> int:
    """Serve sweep points from the coordinator at ``connect`` until shutdown.

    ``jobs`` is the slot count advertised to the coordinator (defaults to
    :func:`default_worker_jobs`).  Returns a process exit code (0 on an
    orderly shutdown).
    """
    from repro.harness.backends import enable_keepalive

    if jobs is None:
        jobs = default_worker_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    host, port = parse_address(connect)
    sock = _connect(host, port, retry_seconds)
    try:
        sock.settimeout(None)
        # Symmetric with the coordinator: if the coordinator *host* vanishes
        # without a FIN, keepalive turns the silent hang into an error.
        enable_keepalive(sock)
        send_frame(sock, {"type": "hello", "pid": os.getpid(),
                          "proto": PROTOCOL_VERSION, "slots": jobs,
                          "python": sys.version.split()[0]})
        _log(f"connected to {host}:{port} with {jobs} slot(s)")
        if jobs == 1:
            return _serve_inline(sock)
        return _serve_pooled(sock, jobs)
    finally:
        sock.close()
