"""The ``repro worker`` process — executes sweep points for a coordinator.

A worker is the remote half of
:class:`~repro.harness.backends.DistributedBackend`::

    repro worker --connect HOST:PORT

It dials the coordinator (retrying while the coordinator is still coming
up, so workers and coordinator can be launched in any order), sends a
``hello`` frame, then serves a simple loop: receive a ``point`` frame,
execute it in-process, reply with a ``result`` frame.  A point whose
function raises is reported as ``ok: false`` — the *worker* stays up; only
a ``shutdown`` frame or a closed connection ends it.

The worker never touches the result cache; caching is coordinator-side.
"""

from __future__ import annotations

import os
import socket
import sys
import time
import traceback
from typing import Dict

from repro.harness.spec import execute_point
from repro.harness.wire import (
    decode_point,
    encode_result,
    parse_address,
    recv_frame,
    send_frame,
)


def _log(message: str) -> None:
    print(f"repro worker[{os.getpid()}]: {message}", file=sys.stderr, flush=True)


def _connect(host: str, port: int, retry_seconds: float) -> socket.socket:
    """Dial the coordinator, retrying until ``retry_seconds`` elapse."""
    deadline = time.monotonic() + retry_seconds
    delay = 0.05
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError as error:
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    f"could not reach coordinator at {host}:{port} "
                    f"within {retry_seconds:.0f}s: {error}") from error
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


def _execute(frame: Dict[str, object]) -> Dict[str, object]:
    """Run one ``point`` frame and build the ``result`` reply.

    A raising point function — or a result that cannot be pickled back,
    which would equally fail the ``multiprocessing`` backend — becomes an
    ``ok: false`` reply; the worker itself stays up.
    """
    task_id = frame.get("task_id")
    try:
        point = decode_point(str(frame["point"]))
        result = execute_point(point)
        return {"type": "result", "task_id": task_id, "ok": True,
                "result": encode_result(result)}
    except Exception:  # noqa: BLE001 - reported to the coordinator per point
        return {"type": "result", "task_id": task_id, "ok": False,
                "error": traceback.format_exc(limit=8)}


def run_worker(connect: str, retry_seconds: float = 30.0) -> int:
    """Serve sweep points from the coordinator at ``connect`` until shutdown.

    Returns a process exit code (0 on an orderly shutdown).
    """
    from repro.harness.backends import enable_keepalive

    host, port = parse_address(connect)
    sock = _connect(host, port, retry_seconds)
    served = 0
    try:
        sock.settimeout(None)
        # Symmetric with the coordinator: if the coordinator *host* vanishes
        # without a FIN, keepalive turns the silent hang into an error.
        enable_keepalive(sock)
        send_frame(sock, {"type": "hello", "pid": os.getpid(),
                          "python": sys.version.split()[0]})
        _log(f"connected to {host}:{port}")
        while True:
            frame = recv_frame(sock)
            if frame is None:
                _log(f"coordinator closed the connection after {served} points")
                return 0
            kind = frame.get("type")
            if kind == "shutdown":
                _log(f"shutdown after {served} points")
                return 0
            if kind != "point":
                _log(f"ignoring unexpected {kind!r} frame")
                continue
            send_frame(sock, _execute(frame))
            served += 1
    finally:
        sock.close()
