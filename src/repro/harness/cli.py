"""``python -m repro`` — run the paper's sweeps (and your own) from the shell.

Examples::

    python -m repro list
    python -m repro list --json
    python -m repro run figure5
    python -m repro run figure5 --full --jobs 4
    python -m repro run all --backend process --workers 8 --no-cache
    python -m repro run figure9 --csv --out figure9.csv

    # ad-hoc scenarios, no source edits: any registered workload x any
    # system presets x any parameter grid, with dotted-path config
    # overrides — executed through the same cache and backends
    python -m repro sweep matmul --system cpu,ccsvm --grid size=8,16
    python -m repro sweep matmul --system cpu,ccsvm --grid size=8,16 \
        --set mttop.count=4 --backend process --workers 4
    python -m repro sweep barnes_hut --system ccsvm --grid bodies=16,32 \
        --param timesteps=1 --set "l2.total_size_bytes=8MiB"

    # hierarchy-shape presets and declarative scenario files
    python -m repro sweep barnes_hut --system apu-shared-l2,ccsvm-l3 \
        --grid bodies=8,16 --param timesteps=1
    python -m repro sweep --scenario study.toml
    python -m repro sweep --scenario study.toml --set l3.enabled=true --seed 9

    # distributed: one coordinator, any number of workers (any order);
    # each worker runs up to --jobs points at once on a local process pool
    python -m repro worker --connect 127.0.0.1:7421 --jobs 8 &
    python -m repro worker --connect 127.0.0.1:7421 --jobs 8 &
    python -m repro run table2 --backend distributed --workers 2

    # always-on service: one fleet, many submitters (priorities +
    # fair share); workers are the same `repro worker` processes
    python -m repro serve --bind 127.0.0.1:7421 &
    python -m repro worker --connect 127.0.0.1:7421 --jobs 8 &
    python -m repro submit matmul --system cpu,ccsvm --grid size=8,16
    python -m repro submit --sweep figure5 --priority 5
    python -m repro status --json
    python -m repro result job-1
    python -m repro run figure5 --backend service   # same fleet, same output

    # result store: inspect, prune, verify, sync between hosts
    python -m repro cache info --json
    python -m repro cache clear figure5
    python -m repro cache push /mnt/shared/repro-store
    python -m repro cache pull /mnt/shared/repro-store figure5
    python -m repro cache gc --max-age-days 30 --dry-run
    python -m repro cache verify

``--full`` selects each sweep's larger parameter grid (the same grids the
``REPRO_FULL_SWEEP=1`` environment variable selects).  ``--backend``
chooses how points execute — ``serial`` (in-process), ``process`` (a local
as-completed ``multiprocessing`` pool) or ``distributed`` (TCP workers
started with ``repro worker``); ``REPRO_BACKEND`` sets the default, and
plain ``--jobs N`` keeps its historical meaning of ``--backend process``.
Completed points are cached under ``.repro-cache/`` (override with
``--cache-dir`` or ``REPRO_CACHE_DIR``; disable with ``--no-cache``;
inspect or prune with ``repro cache``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.experiments.report import full_sweep_enabled
from repro.harness.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    create_backend,
    default_bind,
    default_service_address,
)
from repro.harness.runner import SweepRunner, default_cache_dir
from repro.harness.spec import HarnessError, get_spec, spec_names
from repro.harness.worker import run_worker


def _positive_int(text: str) -> int:
    """argparse type for worker/job counts: an integer >= 1.

    Validating at parse time gives bad values a clean usage error *before*
    any backend is constructed, matching the ``ValueError`` the backend
    constructors and :func:`~repro.harness.backends.create_backend` raise
    for programmatic misuse.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    """Backend/cache/output options shared by ``run`` and ``sweep``."""
    parser.add_argument("--backend", choices=BACKEND_NAMES,
                        default=os.environ.get(BACKEND_ENV),
                        help="execution backend (default: $REPRO_BACKEND, else "
                             "'process' when --jobs/--workers > 1, else "
                             "'serial')")
    parser.add_argument("--workers", "-w", type=_positive_int, default=None,
                        help="process backend: pool size; distributed backend: "
                             "worker connections to wait for (default: --jobs)")
    parser.add_argument("--jobs", "-j", type=_positive_int,
                        default=int(os.environ.get("REPRO_JOBS", "1")),
                        help="worker processes per sweep "
                             "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--bind", default=None,
                        help=f"distributed backend: HOST:PORT to listen on "
                             f"(default: $REPRO_BIND or {default_bind()!r})")
    parser.add_argument("--start-timeout", type=float, default=60.0,
                        help="distributed backend: seconds to wait for workers "
                             "(default: 60)")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help=f"service backend: address of a running "
                             f"'repro serve' (default: $REPRO_SERVICE or "
                             f"{default_service_address()!r})")
    parser.add_argument("--cache-dir", default=None,
                        help=f"per-point result cache directory "
                             f"(default: $REPRO_CACHE_DIR or "
                             f"{default_cache_dir()!r})")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every point; do not read or write "
                             "the cache")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of the rendered table")
    parser.add_argument("--out", default=None,
                        help="also write the output to this file")
    parser.add_argument("--stats", action="store_true",
                        help="print the merged stats counters (and, on the "
                             "distributed backend, a per-worker throughput "
                             "summary) after each sweep")


def _add_scenario_options(parser: argparse.ArgumentParser) -> None:
    """Workload/system/grid options shared by ``sweep`` and ``submit``."""
    parser.add_argument("workload", nargs="?", default=None,
                        help="registered workload name (see 'repro list'); "
                             "optional when --scenario declares one")
    parser.add_argument("--scenario", default=None, metavar="FILE",
                        help="load the scenario from a TOML or JSON file; "
                             "explicit flags overlay the file's values "
                             "(--grid/--param/--set merge in, the rest "
                             "replace)")
    parser.add_argument("--system", "-s", default=None,
                        help="comma-separated system presets "
                             "(default: the scenario file's, else cpu; "
                             "see 'repro list')")
    parser.add_argument("--grid", "-g", action="append", default=[],
                        metavar="PARAM=V1,V2,...",
                        help="sweep axis; repeatable, swept as a cartesian "
                             "product in the given order")
    parser.add_argument("--param", "-p", action="append", default=[],
                        metavar="PARAM=VALUE",
                        help="fixed workload parameter applied to every "
                             "point; repeatable")
    parser.add_argument("--set", action="append", default=[],
                        dest="overrides", metavar="PATH=VALUE",
                        help="dotted-path configuration override, e.g. "
                             "mttop.count=4 or l2.total_size_bytes=8MiB; "
                             "repeatable, applied to every system whose "
                             "configuration has the path")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload input seed (default: each workload's "
                             "own default)")
    parser.add_argument("--name", default=None,
                        help="scenario name, used for the cache subdirectory "
                             "(default: sweep-<workload>)")


def _add_service_options(parser: argparse.ArgumentParser) -> None:
    """The service address flag every service-client command takes."""
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help=f"address of a running 'repro serve' (default: "
                             f"$REPRO_SERVICE or "
                             f"{default_service_address()!r})")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the figures and tables of Hechtman & Sorin "
                    "(ISPASS 2013) via the parallel sweep harness, or run "
                    "ad-hoc workload x system scenarios with 'repro sweep'.")
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser(
        "list", help="list the registered sweeps, workloads and systems")
    listing.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON object instead "
                              "of the plain text listing")

    run = sub.add_parser("run", help="run one or more registered sweeps")
    run.add_argument("sweeps", nargs="+",
                     help="sweep names (see 'repro list'), or 'all'")
    run.add_argument("--full", action="store_true",
                     help="use the larger sweep grids "
                          "(default honours REPRO_FULL_SWEEP)")
    _add_execution_options(run)

    sweep = sub.add_parser(
        "sweep", help="run an ad-hoc workload x system x grid scenario")
    _add_scenario_options(sweep)
    _add_execution_options(sweep)

    dse = sub.add_parser(
        "dse", help="explore a memory-hierarchy design space and render "
                    "its Pareto frontier")
    dse.add_argument("--space", required=True, metavar="FILE",
                     help="TOML or JSON shape-space declaration "
                          "(axes over dotted config paths, optional "
                          "[fidelity] ladder)")
    dse.add_argument("--strategy", choices=("grid", "random", "halving"),
                     default="grid",
                     help="search strategy (default: grid; halving needs "
                          "the space to declare a fidelity ladder)")
    dse.add_argument("--budget", action="append", default=[],
                     metavar="KEY=VALUE",
                     help="admissibility ceiling, e.g. sram=4MiB or "
                          "area=50; repeatable or comma-separated")
    dse.add_argument("--objective", default="time",
                     help="result column to minimise: time (time_ms), "
                          "dram (dram_accesses), or any row column "
                          "(default: time)")
    dse.add_argument("--cost", choices=("sram", "area", "latency"),
                     default="sram",
                     help="cost metric to minimise on the frontier's "
                          "other axis (default: sram)")
    dse.add_argument("--samples", type=_positive_int, default=None,
                     help="random strategy: how many shapes to sample")
    dse.add_argument("--eta", type=_positive_int, default=2,
                     help="halving strategy: keep ceil(n/eta) shapes per "
                          "fidelity rung (default: 2)")
    dse.add_argument("--seed", type=int, default=0,
                     help="search seed (random sampling; default: 0). The "
                          "workload input seed lives in the space file.")
    dse.add_argument("--replay", metavar="TRACE", default=None,
                     help="evaluate every shape by cache-only replay of this "
                          "captured trace (swaps the space's workload for "
                          "cache_replay and drops its fidelity ladder)")
    dse.add_argument("--all", action="store_true",
                     help="also render the dominated (non-frontier) shapes")
    _add_execution_options(dse)

    bench = sub.add_parser(
        "bench", help="benchmark-trajectory utilities")
    bench_sub = bench.add_subparsers(dest="action", required=True)
    bench_history = bench_sub.add_parser(
        "history", help="compare each benchmark's latest recorded rates "
                        "against its previous run")
    bench_history.add_argument(
        "--path", default=os.path.join("benchmarks", "results",
                                       "trajectory.jsonl"),
        help="trajectory file written by the benchmark runner "
             "(default: benchmarks/results/trajectory.jsonl)")
    bench_history.add_argument("--json", action="store_true",
                               help="emit a machine-readable JSON object")

    worker = sub.add_parser(
        "worker", help="serve sweep points to a distributed coordinator")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="address of the coordinator "
                             "('repro run ... --backend distributed')")
    worker.add_argument("--retry", type=float, default=30.0, metavar="SECONDS",
                        help="keep retrying the connection this long while "
                             "the coordinator comes up (default: 30)")
    worker.add_argument("--jobs", "-j", type=_positive_int, default=None,
                        help="points this worker executes concurrently "
                             "(default: $REPRO_WORKER_JOBS, else the CPU "
                             "count); >1 runs points on a local process pool")

    serve = sub.add_parser(
        "serve", help="run the always-on sweep service (job queue + fleet)")
    serve.add_argument("--bind", default=None, metavar="HOST:PORT",
                       help=f"address to listen on for workers and clients "
                            f"(default: $REPRO_BIND or {default_bind()!r}; "
                            f"port 0 picks a free port)")
    serve.add_argument("--max-retries", type=int, default=3,
                       help="times a point lost to a dying worker is requeued "
                            "before it settles as failed (default: 3)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the per-job/per-worker log lines")
    serve.add_argument("--cache-dir", default=None,
                       help=f"result store every successful point is recorded "
                            f"to, with its job id and submitter in the "
                            f"provenance (default: $REPRO_CACHE_DIR or "
                            f"{default_cache_dir()!r})")
    serve.add_argument("--no-cache", action="store_true",
                       help="do not record results to a store")

    submit = sub.add_parser(
        "submit", help="submit a job to a running 'repro serve' and return")
    submit.add_argument("--sweep", default=None, metavar="NAME",
                        help="submit a registered sweep (see 'repro list') "
                             "instead of an ad-hoc scenario")
    submit.add_argument("--full", action="store_true",
                        help="with --sweep: use the larger sweep grid")
    submit.add_argument("--priority", type=int, default=0,
                        help="queue priority; higher runs first (default: 0)")
    submit.add_argument("--submitter", default=None,
                        help="fair-share identity (default: user@host)")
    _add_scenario_options(submit)
    _add_service_options(submit)

    status = sub.add_parser(
        "status", help="show the service's jobs, workers and queue state")
    status.add_argument("job", nargs="?", default=None,
                        help="show only this job (default: all jobs)")
    status.add_argument("--json", action="store_true",
                        help="emit the raw status reply as JSON")
    _add_service_options(status)

    result = sub.add_parser(
        "result", help="wait for a job and render its results")
    result.add_argument("job", help="job id, as printed by 'repro submit'")
    result.add_argument("--csv", action="store_true",
                        help="emit CSV instead of the rendered table")
    result.add_argument("--out", default=None,
                        help="also write the output to this file")
    _add_service_options(result)

    cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("job", help="job id, as printed by 'repro submit'")
    _add_service_options(cancel)

    cache = sub.add_parser(
        "cache", help="inspect, prune, sync or verify the result store")
    cache_sub = cache.add_subparsers(dest="action", required=True)

    def _store_dir_flag(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--cache-dir", default=None,
            help=f"store directory (default: $REPRO_CACHE_DIR or "
                 f"{default_cache_dir()!r})")

    cache_info_cmd = cache_sub.add_parser(
        "info", help="summarise the store's entries per sweep")
    cache_info_cmd.add_argument("sweeps", nargs="*",
                                help="limit to these sweeps (default: all)")
    cache_info_cmd.add_argument("--json", action="store_true",
                                help="emit a machine-readable JSON object "
                                     "(includes quarantine and orphaned tmp "
                                     "counts)")
    _store_dir_flag(cache_info_cmd)

    cache_clear_cmd = cache_sub.add_parser(
        "clear", help="delete cached entries")
    cache_clear_cmd.add_argument("sweeps", nargs="*",
                                 help="limit to these sweeps (default: all)")
    _store_dir_flag(cache_clear_cmd)

    cache_push = cache_sub.add_parser(
        "push", help="copy entries into another store (idempotent, by "
                     "content address)")
    cache_push.add_argument("dest", metavar="DEST",
                            help="destination store directory (e.g. a "
                                 "shared mount)")
    cache_push.add_argument("sweeps", nargs="*",
                            help="limit to these sweeps (default: all)")
    _store_dir_flag(cache_push)

    cache_pull = cache_sub.add_parser(
        "pull", help="copy entries from another store into this one")
    cache_pull.add_argument("src", metavar="SRC",
                            help="source store directory")
    cache_pull.add_argument("sweeps", nargs="*",
                            help="limit to these sweeps (default: all)")
    _store_dir_flag(cache_pull)

    cache_gc = cache_sub.add_parser(
        "gc", help="prune entries by sweep/age/version; always collects "
                   "unreferenced objects and stale tmp files")
    cache_gc.add_argument("sweeps", nargs="*",
                          help="prune only these sweeps' entries")
    cache_gc.add_argument("--max-age-days", type=float, default=None,
                          metavar="DAYS",
                          help="prune entries whose provenance is older "
                               "than this")
    cache_gc.add_argument("--version", default=None, metavar="X.Y.Z",
                          help="prune entries computed by this repro "
                               "release ('legacy' selects migrated entries)")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be removed, remove nothing")
    _store_dir_flag(cache_gc)

    cache_verify = cache_sub.add_parser(
        "verify", help="re-hash every object against its content-address "
                       "name")
    _store_dir_flag(cache_verify)
    return parser


# --------------------------------------------------------------------------- #
# list
# --------------------------------------------------------------------------- #
def _spec_point_counts(name: str) -> "tuple[int, int]":
    spec = get_spec(name)
    return len(spec.build_points(full=False)), len(spec.build_points(full=True))


def _list(args: argparse.Namespace) -> int:
    from repro.systems import get_system, system_names
    from repro.workloads.registry import variants_for, workload_names

    names = spec_names()
    if args.json:
        counts = {name: _spec_point_counts(name) for name in names}
        payload = {
            "sweeps": [
                {"name": name, "title": get_spec(name).title,
                 "points": counts[name][0],
                 "points_full": counts[name][1]}
                for name in names],
            "workloads": [
                {"name": workload,
                 "systems": sorted(variants_for(workload))}
                for workload in workload_names()],
            "systems": [
                {"name": name, "variant": get_system(name).variant,
                 "description": get_system(name).description}
                for name in system_names()],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print("sweeps:")
    for name in names:
        points, points_full = _spec_point_counts(name)
        print(f"  {name:12s}  {points:3d} points ({points_full} with --full)  "
              f"{get_spec(name).title}")
    print("workloads (for 'repro sweep'):")
    for workload in workload_names():
        print(f"  {workload:14s}  systems: "
              f"{', '.join(sorted(variants_for(workload)))}")
    print("systems:")
    for name in system_names():
        preset = get_system(name)
        print(f"  {name:12s}  {preset.description}")
    return 0


# --------------------------------------------------------------------------- #
# run / sweep
# --------------------------------------------------------------------------- #
def _make_backend(args: argparse.Namespace):
    workers = args.workers if args.workers is not None else args.jobs
    if workers < 1:
        raise ValueError(f"--jobs/--workers must be >= 1, got {workers}")
    name = args.backend or ("process" if workers > 1 else "serial")
    return create_backend(name, jobs=workers, bind=args.bind,
                          min_workers=workers,
                          start_timeout=args.start_timeout,
                          connect=getattr(args, "connect", None)), name


def _reset_worker_stats(backend) -> None:
    """Clear a distributed backend's per-worker stats before a sweep.

    A sweep served entirely from the disk cache never calls
    ``backend.run()``, which is what reassigns ``last_run_worker_stats`` —
    without this reset, ``--stats`` would attribute the *previous* sweep's
    worker throughput to the cached one.
    """
    if hasattr(backend, "last_run_worker_stats"):
        backend.last_run_worker_stats = []


def _print_run_stats(outcome, backend) -> None:
    print(outcome.stats.render())
    worker_stats = getattr(backend, "last_run_worker_stats", None)
    if worker_stats:
        print("per-worker throughput:")
        for entry in worker_stats:
            print(f"  {entry.worker} ({entry.slots} slot(s)): "
                  f"{entry.points} points in {entry.wall_s:.1f}s wall "
                  f"({entry.points_per_s:.2f} points/s, "
                  f"{entry.busy_s:.1f}s busy)")


def _emit(args: argparse.Namespace, results, render) -> str:
    """Render one sweep's ResultSet as a table or CSV, per the flags."""
    if args.csv:
        return results.to_csv(formatted=True)
    return render()


def _finish_outputs(args: argparse.Namespace, outputs: List[str]) -> int:
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(outputs) + "\n")
    return 0


def _run(args: argparse.Namespace) -> int:
    from repro.api import ResultSet

    names = list(args.sweeps)
    if names == ["all"]:
        names = spec_names()
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    backend, backend_name = _make_backend(args)
    full = args.full or full_sweep_enabled()

    outputs: List[str] = []
    with backend:
        runner = SweepRunner(cache_dir=cache_dir, backend=backend)
        for name in names:
            spec = get_spec(name)
            started = time.monotonic()
            _reset_worker_stats(backend)
            outcome = runner.run_spec(spec, full=full)
            elapsed = time.monotonic() - started
            results = ResultSet.from_outcome(outcome)
            text = _emit(args, results, lambda: spec.render(outcome.result))
            outputs.append(text)
            print(text)
            fresh = outcome.points_total - outcome.points_from_cache
            print(f"[{name}] {outcome.points_total} points "
                  f"({fresh} simulated, {outcome.points_from_cache} cached) "
                  f"in {elapsed:.1f}s on the {backend_name} backend",
                  file=sys.stderr)
            if args.stats:
                _print_run_stats(outcome, backend)
            print()

    return _finish_outputs(args, outputs)


def _parse_pairs(pairs: List[str], flag: str, *,
                 split_values: bool) -> Dict[str, object]:
    # The same scalar rules ResultSet.from_csv uses, so a value typed on
    # the command line and one round-tripped through CSV parse identically.
    from repro.api import parse_scalar

    parsed: Dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise HarnessError(
                f"{flag} expects KEY=VALUE, got {pair!r}")
        if split_values:
            parsed[key] = tuple(parse_scalar(part)
                                for part in value.split(",") if part != "")
        else:
            parsed[key] = parse_scalar(value)
    return parsed


def _build_scenario(args: argparse.Namespace):
    """Assemble the :class:`~repro.api.Scenario` behind ``sweep``/``submit``."""
    from repro.api import Scenario

    systems = tuple(name for name in (args.system or "").split(",") if name)
    grid = _parse_pairs(args.grid, "--grid", split_values=True)
    params = _parse_pairs(args.param, "--param", split_values=False)
    # Override values stay as strings; apply_overrides coerces them to the
    # target field's type (so 8MiB, 0.5, true all work).
    overrides: Dict[str, object] = {}
    for pair in args.overrides:
        path, sep, value = pair.partition("=")
        if not sep or not path:
            raise HarnessError(f"--set expects PATH=VALUE, got {pair!r}")
        overrides[path] = value

    if args.scenario:
        from repro.scenario_io import scenario_from_file

        scenario = scenario_from_file(
            args.scenario, cli_systems=systems or None,
            cli_grid=grid or None, cli_params=params or None,
            cli_overrides=overrides or None, cli_seed=args.seed,
            cli_name=args.name, cli_workload=args.workload)
    else:
        if not args.workload:
            raise HarnessError(
                "repro sweep needs a workload name (or --scenario FILE)")
        scenario = Scenario(workload=args.workload,
                            systems=systems or ("cpu",), grid=grid,
                            params=params, overrides=overrides,
                            seed=args.seed, name=args.name)
    return scenario


def _scenario_title(scenario) -> str:
    """The table title ``sweep`` renders (and ``submit`` stashes in meta)."""
    shown = scenario.overrides
    return (f"{scenario.workload} on {', '.join(scenario.systems)}"
            + (f" [{', '.join(f'{k}={v}' for k, v in shown.items())}]"
               if shown else ""))


def _sweep(args: argparse.Namespace) -> int:
    from repro.api import ResultSet

    scenario = _build_scenario(args)
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    backend, backend_name = _make_backend(args)

    with backend:
        runner = SweepRunner(cache_dir=cache_dir, backend=backend)
        started = time.monotonic()
        _reset_worker_stats(backend)
        outcome = runner.run_points(scenario.points(),
                                    spec_name=scenario.name)
        elapsed = time.monotonic() - started
        results = ResultSet.from_outcome(outcome)
        title = _scenario_title(scenario)
        text = _emit(args, results, lambda: results.render(title=title))
        print(text)
        fresh = outcome.points_total - outcome.points_from_cache
        print(f"[{scenario.name}] {outcome.points_total} points "
              f"({fresh} simulated, {outcome.points_from_cache} cached) "
              f"in {elapsed:.1f}s on the {backend_name} backend",
              file=sys.stderr)
        if args.stats:
            _print_run_stats(outcome, backend)

    return _finish_outputs(args, [text])


# --------------------------------------------------------------------------- #
# dse
# --------------------------------------------------------------------------- #
#: CLI shorthand -> result-row / cost-metric column names.
_DSE_OBJECTIVES = {"time": "time_ms", "dram": "dram_accesses"}
_DSE_COSTS = {"sram": "sram_bytes", "area": "area_mm2",
              "latency": "latency_ns"}


def _dse(args: argparse.Namespace) -> int:
    from repro.dse.budget import Budget
    from repro.dse.search import Explorer, create_strategy
    from repro.dse.space import ShapeSpace, space_from_file

    space = space_from_file(args.space)
    if args.replay is not None:
        # Same axes, same base system, same budget semantics — but every
        # shape is scored by walking the captured trace through a bare
        # hierarchy instead of re-simulating the workload.  The fidelity
        # ladder is meaningless for a fixed trace, so it is dropped.
        space = ShapeSpace(workload="cache_replay", system=space.system,
                           axes=space.axes,
                           params={"trace": args.replay},
                           overrides=space.overrides, fidelity=None,
                           seed=space.seed, name=f"{space.name}-replay")
    budget = Budget.parse(args.budget)
    objective = _DSE_OBJECTIVES.get(args.objective, args.objective)
    cost = _DSE_COSTS[args.cost]
    strategy = create_strategy(args.strategy, samples=args.samples,
                               seed=args.seed, eta=args.eta)
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    backend, backend_name = _make_backend(args)

    started = time.monotonic()
    with backend:
        explorer = Explorer(space, budget=budget, objective=objective,
                            cost=cost, backend=backend, cache_dir=cache_dir)
        exploration = explorer.explore(strategy, include_dominated=args.all)
    elapsed = time.monotonic() - started

    results = exploration.result
    title = (f"{space.name}: {space.workload} Pareto frontier "
             f"({objective} vs {cost})")
    text = _emit(args, results, lambda: results.render(title=title))
    print(text)
    stats = exploration.stats
    admitted = stats.shapes_total - stats.shapes_pruned
    print(f"[{space.name}] {strategy.name} explored {admitted} of "
          f"{stats.shapes_total} shapes ({stats.shapes_pruned} pruned) — "
          f"{stats.points_simulated} simulated, "
          f"{stats.points_cached} cached, "
          f"{stats.points_cancelled} cancelled — in {elapsed:.1f}s on the "
          f"{backend_name} backend", file=sys.stderr)
    if args.stats:
        for name, value in stats.to_dict().items():
            print(f"  {name} = {value}")
        for pruned in exploration.pruned:
            print(f"  pruned {pruned.shape.shape_id}: {pruned.reason}")

    return _finish_outputs(args, [text])


# --------------------------------------------------------------------------- #
# bench
# --------------------------------------------------------------------------- #
#: Non-rate trajectory fields compared alongside the ``*_per_s`` rates.
_BENCH_EXTRA_METRICS = ("speedup",)


def _bench_records(path: str) -> "Dict[str, List[Dict[str, object]]]":
    """Trajectory records grouped by benchmark, in file (= time) order.

    Malformed lines are skipped — the trajectory file is append-only
    across many runs and releases, and one torn write must not make the
    whole history unreadable.  A missing file is an empty history, not
    an error: a fresh checkout simply has no prior record yet.
    """
    grouped: Dict[str, List[Dict[str, object]]] = {}
    if not os.path.exists(path):
        return grouped
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            benchmark = record.get("benchmark")
            if isinstance(benchmark, str) and benchmark:
                grouped.setdefault(benchmark, []).append(record)
    return grouped


def _bench_metrics(record: Dict[str, object]) -> "Dict[str, float]":
    """The comparable numbers of one record: ``*_per_s`` rates + extras."""
    metrics: Dict[str, float] = {}
    for name in sorted(record):
        value = record[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if name.endswith("_per_s") or name in _BENCH_EXTRA_METRICS:
            metrics[name] = float(value)
    return metrics


def _bench_history(args: argparse.Namespace) -> int:
    grouped = _bench_records(args.path)
    if not grouped:
        # Nothing recorded yet (fresh checkout, or the benchmarks have
        # not run twice).  That is a clean "no prior record" report, not
        # a failure — CI runs this before the first trajectory exists.
        if args.json:
            print(json.dumps({"path": args.path, "benchmarks": []},
                             indent=2))
        else:
            print(f"{args.path}: no prior record")
        return 0

    report = []
    for benchmark in sorted(grouped):
        records = grouped[benchmark]
        latest, previous = records[-1], \
            (records[-2] if len(records) > 1 else None)
        latest_metrics = _bench_metrics(latest)
        previous_metrics = _bench_metrics(previous) if previous else {}
        metrics = []
        for name, value in latest_metrics.items():
            entry: Dict[str, object] = {"name": name, "latest": value}
            baseline = previous_metrics.get(name)
            if baseline is not None:
                entry["previous"] = baseline
                if baseline != 0:
                    entry["delta_pct"] = round(
                        (value - baseline) / baseline * 100.0, 2)
            metrics.append(entry)
        report.append({"benchmark": benchmark, "runs": len(records),
                       "created_at": latest.get("created_at"),
                       "git_sha": latest.get("git_sha"),
                       "metrics": metrics})

    if args.json:
        print(json.dumps({"path": args.path, "benchmarks": report},
                         indent=2))
        return 0
    for entry in report:
        header = f"{entry['benchmark']}: {entry['runs']} run(s)"
        if entry.get("created_at"):
            header += f", latest {entry['created_at']}"
        print(header)
        for metric in entry["metrics"]:
            line = f"  {metric['name']:32s} {metric['latest']:>14,.2f}"
            if "previous" in metric:
                line += f"  (was {metric['previous']:>14,.2f}"
                if "delta_pct" in metric:
                    line += f", {metric['delta_pct']:+.1f}%"
                line += ")"
            else:
                line += "  (no previous run)"
            print(line)
    return 0


# --------------------------------------------------------------------------- #
# serve / submit / status / result / cancel (the sweep service)
# --------------------------------------------------------------------------- #
def _serve(args: argparse.Namespace) -> int:
    from repro.service.server import run_service

    cache_dir = None if args.no_cache \
        else (args.cache_dir or default_cache_dir())
    return run_service(args.bind or default_bind(),
                       max_retries=args.max_retries, quiet=args.quiet,
                       cache_dir=cache_dir)


def _submit(args: argparse.Namespace) -> int:
    import getpass
    import socket as socket_module

    from repro.api import JobSpec
    from repro.service.client import ServiceClient

    if args.sweep:
        spec = get_spec(args.sweep)
        points = spec.build_points(full=args.full or full_sweep_enabled())
        name = args.name or spec.name
        meta: Dict[str, object] = {"sweep": spec.name}
    else:
        scenario = _build_scenario(args)
        points = scenario.points()
        name = scenario.name
        meta = {"title": _scenario_title(scenario)}
    try:
        submitter = args.submitter or \
            f"{getpass.getuser()}@{socket_module.gethostname()}"
    except (KeyError, OSError):  # no passwd entry in minimal containers
        submitter = args.submitter or f"pid-{os.getpid()}"
    job = JobSpec.from_points(points, name=name, submitter=submitter,
                              priority=args.priority, meta=meta)
    with ServiceClient(args.connect) as client:
        job_id = client.submit(job)
    print(f"submitted {name} as {job_id}: {len(points)} point(s), "
          f"priority {args.priority}", file=sys.stderr)
    print(job_id)  # bare id on stdout, so scripts can capture it
    return 0


def _status(args: argparse.Namespace) -> int:
    from repro.api import JobStatus
    from repro.service.client import ServiceClient

    with ServiceClient(args.connect) as client:
        payload = client.status_payload(args.job)
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    jobs = payload.get("jobs")
    statuses = [JobStatus.from_json(entry)
                for entry in (jobs if isinstance(jobs, list) else [])]
    if payload.get("draining"):
        print("service is draining: new submissions are refused")
    if not statuses:
        print("no jobs")
    else:
        width = max(len(status.job_id) for status in statuses)
        for status in statuses:
            line = (f"{status.job_id:{width}s}  {status.state.value:9s} "
                    f"{status.settled:4d}/{status.total:<4d} "
                    f"prio {status.priority:<3d} {status.name} "
                    f"(from {status.submitter})")
            if status.error:
                line += f"  [{status.error.splitlines()[0]}]"
            print(line)
    workers = payload.get("workers")
    for entry in (workers if isinstance(workers, list) else []):
        print(f"worker {entry.get('label')}: {entry.get('slots')} slot(s), "
              f"{entry.get('inflight')} in flight, "
              f"{entry.get('points_done')} done")
    return 0


def _result(args: argparse.Namespace) -> int:
    from repro.api import ResultSet
    from repro.harness.spec import default_combine
    from repro.harness.wire import decode_result
    from repro.service.client import ServiceClient

    with ServiceClient(args.connect) as client:
        reply = client.result(args.job)
    state = str(reply.get("state"))
    entries = reply.get("points")
    entries = sorted(entries if isinstance(entries, list) else [],
                     key=lambda e: e.get("index", 0))
    failures = [entry for entry in entries if not entry.get("ok")]
    if failures or state != "done":
        for entry in failures:
            print(f"repro: point {entry.get('spec')}:{entry.get('point_id')} "
                  f"failed: {entry.get('error')}", file=sys.stderr)
        print(f"repro: job {args.job} {state}", file=sys.stderr)
        return 2
    groups: Dict[str, List[Dict[str, object]]] = {}
    for entry in entries:
        result = decode_result(str(entry.get("result", "")))
        groups.setdefault(str(entry.get("group") or "rows"),
                          []).extend(result.rows)
    combined = default_combine(groups)
    results = ResultSet.from_result(combined)
    meta = reply.get("meta")
    meta = meta if isinstance(meta, dict) else {}
    if meta.get("sweep"):
        # A registered sweep renders through its own spec, so `repro
        # result` of a submitted figure is byte-identical to `repro run`.
        spec = get_spec(str(meta["sweep"]))
        text = _emit(args, results, lambda: spec.render(combined))
    else:
        title = meta.get("title")
        text = _emit(args, results,
                     lambda: results.render(
                         title=str(title) if title else None))
    print(text)
    return _finish_outputs(args, [text])


def _cancel(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    with ServiceClient(args.connect) as client:
        status = client.cancel(args.job)
    print(f"{status.job_id}: {status.state.value} "
          f"({status.settled}/{status.total} points settled)")
    return 0


# --------------------------------------------------------------------------- #
# cache
# --------------------------------------------------------------------------- #
def _cache(args: argparse.Namespace) -> int:
    from repro.store import FileStore

    cache_dir = args.cache_dir or default_cache_dir()
    store = FileStore(cache_dir)

    if args.action == "verify":
        report = store.verify()
        if report.ok:
            print(f"cache {cache_dir}: {report.objects} object(s) verified")
            return 0
        for object_hash in report.mismatched:
            print(f"repro: object {object_hash} does not match its hash",
                  file=sys.stderr)
        for marker in report.dangling:
            print(f"repro: entry {marker} points at a missing object",
                  file=sys.stderr)
        print(f"cache {cache_dir}: {len(report.mismatched)} corrupt, "
              f"{len(report.dangling)} dangling of "
              f"{report.objects} object(s)")
        return 1

    if args.action in ("push", "pull"):
        other = FileStore(args.dest if args.action == "push" else args.src)
        specs = args.sweeps or None
        if args.action == "push":
            report = store.push(other, specs=specs)
            arrow = "->"
        else:
            report = store.pull(other, specs=specs)
            arrow = "<-"
        line = (f"cache {cache_dir} {arrow} {other.root}: "
                f"{report.entries_copied} entries copied, "
                f"{report.entries_skipped} up to date, "
                f"{report.objects_copied} object(s) transferred")
        if report.corrupt_skipped:
            line += f", {report.corrupt_skipped} corrupt skipped"
        print(line)
        return 0

    if args.action == "gc":
        report = store.gc(specs=args.sweeps or None,
                          max_age_days=args.max_age_days,
                          version=args.version, dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        print(f"cache {cache_dir}: {verb} {report.entries_removed} "
              f"entries, {report.objects_removed} object(s) "
              f"({report.bytes_freed / 1024:.1f} KiB) and "
              f"{report.tmp_removed} tmp file(s)")
        return 0

    # info / clear
    store_info = store.info()
    infos = store_info.specs
    known = {info.spec for info in infos}
    missing = [name for name in args.sweeps if name not in known]
    if missing:
        print(f"repro: cache {cache_dir} has no entries for: "
              f"{', '.join(missing)}", file=sys.stderr)
    if args.sweeps:
        infos = [info for info in infos if info.spec in args.sweeps]
    if args.action == "info":
        if args.json:
            payload = {
                "root": store_info.root,
                "entries": sum(info.entries for info in infos),
                "objects": store_info.objects,
                "objects_bytes": store_info.objects_bytes,
                "quarantined": store_info.quarantined,
                "quarantined_bytes": store_info.quarantined_bytes,
                "orphan_tmp": store_info.orphan_tmp,
                "specs": [{"spec": info.spec, "entries": info.entries,
                           "bytes": info.bytes} for info in infos],
            }
            print(json.dumps(payload, indent=2))
            return 0
        if not infos:
            print(f"cache {cache_dir}: empty")
        else:
            total_entries = sum(info.entries for info in infos)
            total_bytes = sum(info.bytes for info in infos)
            width = max(len(info.spec) for info in infos)
            print(f"cache {cache_dir}:")
            for info in infos:
                print(f"  {info.spec:{width}s}  {info.entries:5d} entries  "
                      f"{info.bytes / 1024:8.1f} KiB")
            print(f"  {'total':{width}s}  {total_entries:5d} entries  "
                  f"{total_bytes / 1024:8.1f} KiB")
        if store_info.quarantined:
            print(f"  quarantine: {store_info.quarantined} file(s), "
                  f"{store_info.quarantined_bytes / 1024:.1f} KiB "
                  f"(under {os.path.join(cache_dir, 'quarantine')})")
        if store_info.orphan_tmp:
            print(f"  orphaned tmp files: {store_info.orphan_tmp} "
                  f"(an interrupted writer; 'repro cache gc' removes them)")
        return 0
    removed = store.clear(specs=args.sweeps or None) \
        if os.path.isdir(cache_dir) else 0
    print(f"cache {cache_dir}: removed {removed} entries")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro`` console script)."""
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exit_request:
        # argparse already printed the usage error (or help); fold its exit
        # code into the return-code contract this function has with tests
        # and the console script.
        code = exit_request.code
        return code if isinstance(code, int) else 2
    try:
        if args.command == "list":
            return _list(args)
        if args.command == "worker":
            return run_worker(args.connect, retry_seconds=args.retry,
                              jobs=args.jobs)
        if args.command == "cache":
            return _cache(args)
        if args.command == "sweep":
            return _sweep(args)
        if args.command == "dse":
            return _dse(args)
        if args.command == "bench":
            return _bench_history(args)
        if args.command == "serve":
            return _serve(args)
        if args.command == "submit":
            return _submit(args)
        if args.command == "status":
            return _status(args)
        if args.command == "result":
            return _result(args)
        if args.command == "cancel":
            return _cancel(args)
        return _run(args)
    except (ReproError, ValueError, OSError) as error:
        # OSError covers ConnectionError plus socket setup failures such as
        # an already-bound coordinator port; ReproError covers the harness
        # plus the scenario / registry / override errors of repro.api.
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
