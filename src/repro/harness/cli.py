"""``python -m repro`` — run the paper's sweeps from the command line.

Examples::

    python -m repro list
    python -m repro run figure5
    python -m repro run figure5 --full --jobs 4
    python -m repro run all --backend process --workers 8 --no-cache
    python -m repro run figure9 --csv --out figure9.csv

    # distributed: one coordinator, any number of workers (any order);
    # each worker runs up to --jobs points at once on a local process pool
    python -m repro worker --connect 127.0.0.1:7421 --jobs 8 &
    python -m repro worker --connect 127.0.0.1:7421 --jobs 8 &
    python -m repro run table2 --backend distributed --workers 2

    python -m repro cache info
    python -m repro cache clear figure5

``--full`` selects each sweep's larger parameter grid (the same grids the
``REPRO_FULL_SWEEP=1`` environment variable selects).  ``--backend``
chooses how points execute — ``serial`` (in-process), ``process`` (a local
as-completed ``multiprocessing`` pool) or ``distributed`` (TCP workers
started with ``repro worker``); ``REPRO_BACKEND`` sets the default, and
plain ``--jobs N`` keeps its historical meaning of ``--backend process``.
Completed points are cached under ``.repro-cache/`` (override with
``--cache-dir`` or ``REPRO_CACHE_DIR``; disable with ``--no-cache``;
inspect or prune with ``repro cache``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.experiments.report import full_sweep_enabled, rows_to_csv
from repro.harness.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    create_backend,
    default_bind,
)
from repro.harness.runner import (
    SweepRunner,
    cache_clear,
    cache_info,
    default_cache_dir,
)
from repro.harness.spec import HarnessError, get_spec, spec_names
from repro.harness.worker import run_worker


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the figures and tables of Hechtman & Sorin "
                    "(ISPASS 2013) via the parallel sweep harness.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered sweeps")

    run = sub.add_parser("run", help="run one or more sweeps")
    run.add_argument("sweeps", nargs="+",
                     help="sweep names (see 'repro list'), or 'all'")
    run.add_argument("--full", action="store_true",
                     help="use the larger sweep grids "
                          "(default honours REPRO_FULL_SWEEP)")
    run.add_argument("--backend", choices=BACKEND_NAMES,
                     default=os.environ.get(BACKEND_ENV),
                     help="execution backend (default: $REPRO_BACKEND, else "
                          "'process' when --jobs/--workers > 1, else 'serial')")
    run.add_argument("--workers", "-w", type=int, default=None,
                     help="process backend: pool size; distributed backend: "
                          "worker connections to wait for (default: --jobs)")
    run.add_argument("--jobs", "-j", type=int,
                     default=int(os.environ.get("REPRO_JOBS", "1")),
                     help="worker processes per sweep (default: $REPRO_JOBS or 1)")
    run.add_argument("--bind", default=None,
                     help=f"distributed backend: HOST:PORT to listen on "
                          f"(default: $REPRO_BIND or {default_bind()!r})")
    run.add_argument("--start-timeout", type=float, default=60.0,
                     help="distributed backend: seconds to wait for workers "
                          "(default: 60)")
    run.add_argument("--cache-dir", default=None,
                     help=f"per-point result cache directory "
                          f"(default: $REPRO_CACHE_DIR or {default_cache_dir()!r})")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute every point; do not read or write the cache")
    run.add_argument("--csv", action="store_true",
                     help="emit CSV instead of the rendered table")
    run.add_argument("--out", default=None,
                     help="also write the output to this file")
    run.add_argument("--stats", action="store_true",
                     help="print the merged stats counters after each sweep")

    worker = sub.add_parser(
        "worker", help="serve sweep points to a distributed coordinator")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="address of the coordinator "
                             "('repro run ... --backend distributed')")
    worker.add_argument("--retry", type=float, default=30.0, metavar="SECONDS",
                        help="keep retrying the connection this long while "
                             "the coordinator comes up (default: 30)")
    worker.add_argument("--jobs", "-j", type=int, default=None,
                        help="points this worker executes concurrently "
                             "(default: $REPRO_WORKER_JOBS, else the CPU "
                             "count); >1 runs points on a local process pool")

    cache = sub.add_parser("cache", help="inspect or prune the point cache")
    cache.add_argument("action", choices=("info", "clear"),
                       help="'info' summarises entries; 'clear' deletes them")
    cache.add_argument("sweeps", nargs="*",
                       help="limit the action to these sweeps (default: all)")
    cache.add_argument("--cache-dir", default=None,
                       help=f"cache directory (default: $REPRO_CACHE_DIR or "
                            f"{default_cache_dir()!r})")
    return parser


def _emit_csv(result: object) -> str:
    if isinstance(result, list):
        return rows_to_csv(result)
    parts = []
    for group, rows in result.items():
        parts.append(f"# {group}")
        parts.append(rows_to_csv(rows))
    return "\n".join(parts)


def _make_backend(args: argparse.Namespace):
    workers = args.workers if args.workers is not None else args.jobs
    if workers < 1:
        raise ValueError(f"--jobs/--workers must be >= 1, got {workers}")
    name = args.backend or ("process" if workers > 1 else "serial")
    return create_backend(name, jobs=workers, bind=args.bind,
                          min_workers=workers,
                          start_timeout=args.start_timeout), name


def _run(args: argparse.Namespace) -> int:
    names = list(args.sweeps)
    if names == ["all"]:
        names = spec_names()
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    backend, backend_name = _make_backend(args)
    full = args.full or full_sweep_enabled()

    outputs: List[str] = []
    with backend:
        runner = SweepRunner(cache_dir=cache_dir, backend=backend)
        for name in names:
            spec = get_spec(name)
            started = time.monotonic()
            outcome = runner.run_spec(spec, full=full)
            elapsed = time.monotonic() - started
            text = _emit_csv(outcome.result) if args.csv \
                else spec.render(outcome.result)
            outputs.append(text)
            print(text)
            fresh = outcome.points_total - outcome.points_from_cache
            print(f"[{name}] {outcome.points_total} points "
                  f"({fresh} simulated, {outcome.points_from_cache} cached) "
                  f"in {elapsed:.1f}s on the {backend_name} backend",
                  file=sys.stderr)
            if args.stats:
                print(outcome.stats.render())
            print()

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(outputs) + "\n")
    return 0


def _cache(args: argparse.Namespace) -> int:
    cache_dir = args.cache_dir or default_cache_dir()
    infos = cache_info(cache_dir)
    known = {info.spec for info in infos}
    missing = [name for name in args.sweeps if name not in known]
    if missing:
        print(f"repro: cache {cache_dir} has no entries for: "
              f"{', '.join(missing)}", file=sys.stderr)
    if args.sweeps:
        infos = [info for info in infos if info.spec in args.sweeps]
    if args.action == "info":
        if not infos:
            print(f"cache {cache_dir}: empty")
            return 0
        total_entries = sum(info.entries for info in infos)
        total_bytes = sum(info.bytes for info in infos)
        width = max(len(info.spec) for info in infos)
        print(f"cache {cache_dir}:")
        for info in infos:
            print(f"  {info.spec:{width}s}  {info.entries:5d} entries  "
                  f"{info.bytes / 1024:8.1f} KiB")
        print(f"  {'total':{width}s}  {total_entries:5d} entries  "
              f"{total_bytes / 1024:8.1f} KiB")
        return 0
    removed = cache_clear(cache_dir, specs=args.sweeps or None)
    print(f"cache {cache_dir}: removed {removed} entries")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro`` console script)."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in spec_names():
            print(f"{name:12s}  {get_spec(name).title}")
        return 0
    try:
        if args.command == "worker":
            return run_worker(args.connect, retry_seconds=args.retry,
                              jobs=args.jobs)
        if args.command == "cache":
            return _cache(args)
        return _run(args)
    except (HarnessError, ValueError, OSError) as error:
        # OSError covers ConnectionError plus socket setup failures such as
        # an already-bound coordinator port.
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
