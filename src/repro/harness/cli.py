"""``python -m repro`` — run the paper's sweeps from the command line.

Examples::

    python -m repro list
    python -m repro run figure5
    python -m repro run figure5 --full --jobs 4
    python -m repro run all --jobs 8 --no-cache
    python -m repro run figure9 --csv --out figure9.csv

``--full`` selects each sweep's larger parameter grid (the same grids the
``REPRO_FULL_SWEEP=1`` environment variable selects), ``--jobs N`` fans the
sweep's independent simulation points out over N worker processes, and
completed points are cached under ``.repro-cache/`` (override with
``--cache-dir`` or ``REPRO_CACHE_DIR``; disable with ``--no-cache``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.experiments.report import full_sweep_enabled, rows_to_csv
from repro.harness.runner import SweepRunner, default_cache_dir
from repro.harness.spec import HarnessError, get_spec, spec_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the figures and tables of Hechtman & Sorin "
                    "(ISPASS 2013) via the parallel sweep harness.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered sweeps")

    run = sub.add_parser("run", help="run one or more sweeps")
    run.add_argument("sweeps", nargs="+",
                     help="sweep names (see 'repro list'), or 'all'")
    run.add_argument("--full", action="store_true",
                     help="use the larger sweep grids "
                          "(default honours REPRO_FULL_SWEEP)")
    run.add_argument("--jobs", "-j", type=int,
                     default=int(os.environ.get("REPRO_JOBS", "1")),
                     help="worker processes per sweep (default: $REPRO_JOBS or 1)")
    run.add_argument("--cache-dir", default=None,
                     help=f"per-point result cache directory "
                          f"(default: $REPRO_CACHE_DIR or {default_cache_dir()!r})")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute every point; do not read or write the cache")
    run.add_argument("--csv", action="store_true",
                     help="emit CSV instead of the rendered table")
    run.add_argument("--out", default=None,
                     help="also write the output to this file")
    run.add_argument("--stats", action="store_true",
                     help="print the merged stats counters after each sweep")
    return parser


def _emit_csv(result: object) -> str:
    if isinstance(result, list):
        return rows_to_csv(result)
    parts = []
    for group, rows in result.items():
        parts.append(f"# {group}")
        parts.append(rows_to_csv(rows))
    return "\n".join(parts)


def _run(args: argparse.Namespace) -> int:
    names = list(args.sweeps)
    if names == ["all"]:
        names = spec_names()
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    runner = SweepRunner(jobs=args.jobs, cache_dir=cache_dir)
    full = args.full or full_sweep_enabled()

    outputs: List[str] = []
    for name in names:
        spec = get_spec(name)
        started = time.monotonic()
        outcome = runner.run_spec(spec, full=full)
        elapsed = time.monotonic() - started
        text = _emit_csv(outcome.result) if args.csv else spec.render(outcome.result)
        outputs.append(text)
        print(text)
        fresh = outcome.points_total - outcome.points_from_cache
        print(f"[{name}] {outcome.points_total} points "
              f"({fresh} simulated, {outcome.points_from_cache} cached) "
              f"in {elapsed:.1f}s with jobs={args.jobs}", file=sys.stderr)
        if args.stats:
            print(outcome.stats.render())
        print()

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(outputs) + "\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro`` console script)."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in spec_names():
            print(f"{name:12s}  {get_spec(name).title}")
        return 0
    try:
        return _run(args)
    except (HarnessError, ValueError) as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
