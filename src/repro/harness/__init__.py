"""Unified sweep-runner subsystem.

Every experiment of the reproduction — the paper's Figures 5-9, Table 2 and
the ablation grid — is declared as a :class:`~repro.harness.spec.SweepSpec`:
a named registry entry that expands into independent
:class:`~repro.harness.spec.SweepPoint` s.  A
:class:`~repro.harness.runner.SweepRunner` executes the points sequentially
or across a ``multiprocessing`` pool, merges their
:class:`~repro.sim.stats.StatsRegistry` counters, and caches completed
points to disk keyed by a hash of their full configuration.

``python -m repro run figure5 --full --jobs 4`` drives it from the shell.
"""

from repro.harness.runner import SweepOutcome, SweepRunner, default_cache_dir
from repro.harness.spec import (
    HarnessError,
    PointResult,
    SweepPoint,
    SweepSpec,
    execute_point,
    get_spec,
    load_builtin_specs,
    register,
    spec_names,
)

__all__ = [
    "HarnessError",
    "PointResult",
    "SweepOutcome",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "default_cache_dir",
    "execute_point",
    "get_spec",
    "load_builtin_specs",
    "register",
    "spec_names",
]
