"""Unified sweep-runner subsystem.

Every experiment of the reproduction — the paper's Figures 5-9, Table 2 and
the ablation grid — is declared as a :class:`~repro.harness.spec.SweepSpec`:
a named registry entry that expands into independent
:class:`~repro.harness.spec.SweepPoint` s.  A
:class:`~repro.harness.runner.SweepRunner` executes the points through a
pluggable :class:`~repro.harness.backends.ExecutionBackend` — sequentially,
across a ``multiprocessing`` pool, or streamed over TCP to ``repro worker``
processes on other hosts — merges their
:class:`~repro.sim.stats.StatsRegistry` counters, and persists completed
points to a content-addressed, provenance-stamped result store
(:mod:`repro.store`) keyed by a hash of their full configuration (store
access is coordinator-side only; workers never touch it).

``python -m repro run figure5 --full --jobs 4`` drives it from the shell;
``python -m repro run table2 --backend distributed --workers 2`` fans out
to ``python -m repro worker --connect HOST:PORT`` processes.  Backends
stream results as points complete (``run_iter``) and are cancellable, so
the runner caches incrementally and early-stopping callers can abandon
in-flight work; ``--backend service`` runs the same points as a job on an
always-on ``repro serve`` fleet (see :mod:`repro.service`).
"""

from repro.harness.backends import (
    DistributedBackend,
    ExecutionBackend,
    PointFailure,
    ProcessPoolBackend,
    SerialBackend,
    WorkerRunStats,
    create_backend,
    default_service_address,
)
from repro.harness.runner import (
    SweepOutcome,
    SweepRunner,
    cache_clear,
    cache_info,
    default_cache_dir,
)
from repro.harness.spec import (
    HarnessError,
    PointResult,
    SweepPoint,
    SweepSpec,
    execute_point,
    get_spec,
    load_builtin_specs,
    point_func_ref,
    register,
    resolve_point_func,
    spec_names,
)
from repro.harness.worker import default_worker_jobs, run_worker

__all__ = [
    "DistributedBackend",
    "ExecutionBackend",
    "HarnessError",
    "PointFailure",
    "PointResult",
    "ProcessPoolBackend",
    "SerialBackend",
    "SweepOutcome",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "WorkerRunStats",
    "cache_clear",
    "cache_info",
    "create_backend",
    "default_cache_dir",
    "default_service_address",
    "default_worker_jobs",
    "execute_point",
    "get_spec",
    "load_builtin_specs",
    "point_func_ref",
    "register",
    "resolve_point_func",
    "run_worker",
    "spec_names",
]
