"""Declarative sweep specifications.

A :class:`SweepSpec` names an experiment (one figure or table of the paper,
or an ablation grid) and knows how to expand it into independent
:class:`SweepPoint` s — one full-chip simulation (or a small cluster of
related simulations) per point.  Points carry a module-level function plus
picklable keyword arguments, so a :class:`~repro.harness.runner.SweepRunner`
can execute them in worker processes and cache them on disk.

Registering a new experiment is ~10 lines::

    def _point(size, seed):          # module level, returns a row dict
        ...

    def _build(full=False, sizes=None, seed=7):
        sizes = sizes or (FULL if full else DEFAULT)
        return [SweepPoint("myexp", f"size={s}", _point,
                           {"size": s, "seed": seed}) for s in sizes]

    register(SweepSpec(name="myexp", title="My experiment",
                       build_points=_build,
                       render=lambda rows: render_table(rows, COLUMNS)))
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.errors import ReproError


class HarnessError(ReproError):
    """A sweep specification or runner was misused."""


@dataclass
class PointResult:
    """What one executed sweep point produced.

    ``rows`` feed the experiment's table (usually exactly one row);
    ``stats`` is a flat counter dict (in :class:`~repro.sim.stats.StatsRegistry`
    form) merged across all points of the sweep by the runner.
    """

    rows: List[Dict[str, object]]
    stats: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepPoint:
    """One independent unit of work within a sweep.

    ``func`` is either a ``"module:qualname"`` *reference string* naming a
    module-level callable — the preferred form: the point then contains no
    function object at all, so it travels over the distributed wire
    protocol as plain data and its cache key cannot be perturbed by
    function identity — or the callable itself (which must still be
    module-level so it pickles across process boundaries).  ``kwargs``
    must be picklable.  ``group`` names the output panel the point's rows
    belong to; single-table sweeps leave it at ``"rows"``.
    """

    spec: str
    point_id: str
    func: Union[str, Callable[..., object]]
    kwargs: Dict[str, object]
    group: str = "rows"


def point_func_ref(point: SweepPoint) -> str:
    """The stable ``module:qualname`` reference of a point's function.

    This string — not the function object — is what cache keys and error
    messages use, so a by-name point and a by-callable point referring to
    the same function are interchangeable.
    """
    func = point.func
    if isinstance(func, str):
        return func
    return f"{func.__module__}:{getattr(func, '__qualname__', func.__name__)}"


def resolve_point_func(func: Union[str, Callable[..., object]]
                       ) -> Callable[..., object]:
    """Turn a point's ``func`` into a callable, importing by reference."""
    if not isinstance(func, str):
        return func
    module_name, sep, qualname = func.partition(":")
    if not sep or not module_name or not qualname:
        raise HarnessError(
            f"point function reference {func!r} is not of the form "
            "'module:qualname'")
    try:
        target = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as error:
        raise HarnessError(
            f"cannot resolve point function {func!r}: {error}") from error
    if not callable(target):
        raise HarnessError(
            f"point function reference {func!r} resolved to a "
            f"non-callable {type(target).__name__}")
    return target


@dataclass(frozen=True)
class SweepSpec:
    """A named, declarative description of one experiment sweep.

    The runner folds the executed points' rows per ``SweepPoint.group``:
    sweeps whose points all use the default ``"rows"`` group get a plain row
    list, multi-panel sweeps (Figure 8) get a ``{group: rows}`` dict — in
    both cases that is the shape ``render`` receives.
    """

    name: str
    title: str
    build_points: Callable[..., List[SweepPoint]]
    render: Callable[[object], str]


def execute_point(point: SweepPoint) -> PointResult:
    """Run one sweep point in the current process and normalise its result."""
    produced = resolve_point_func(point.func)(**point.kwargs)
    if isinstance(produced, PointResult):
        return produced
    if isinstance(produced, dict):
        return PointResult(rows=[produced])
    if isinstance(produced, list):
        return PointResult(rows=produced)
    raise HarnessError(
        f"point {point.spec}:{point.point_id} returned {type(produced).__name__}; "
        "expected PointResult, row dict or list of row dicts"
    )


def default_combine(groups: Dict[str, List[Dict[str, object]]]) -> object:
    """Collapse single-panel sweeps to a plain row list."""
    if list(groups) == ["rows"]:
        return groups["rows"]
    return dict(groups)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, SweepSpec] = {}


def register(spec: SweepSpec) -> SweepSpec:
    """Add ``spec`` to the global registry (idempotent per name) and return it."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise HarnessError(f"sweep spec {spec.name!r} registered twice")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> SweepSpec:
    """Look up a registered sweep spec by name."""
    load_builtin_specs()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise HarnessError(f"no sweep spec named {name!r}; known specs: {known}") \
            from None


def spec_names() -> List[str]:
    """Names of every registered sweep spec, sorted."""
    load_builtin_specs()
    return sorted(_REGISTRY)


def load_builtin_specs() -> None:
    """Import the experiment modules so their specs self-register."""
    # Imported lazily to avoid a cycle: experiment modules import this module
    # to build their specs.
    from repro.experiments import (  # noqa: F401
        ablations, figure5, figure6, figure7, figure8, figure9, table2)
