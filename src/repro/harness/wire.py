"""Wire protocol shared by the distributed backend and ``repro worker``.

Messages are *length-prefixed JSON frames*: a 4-byte big-endian payload
length followed by a UTF-8 JSON object.  Framing keeps the protocol
stream-safe over TCP; JSON keeps it debuggable (``tcpdump`` shows readable
frames).  Sweep points themselves carry arbitrary picklable kwargs
(seeds, parameter dicts, ...), so a point travels inside the JSON frame as
a base64-encoded pickle — the same picklability contract the
``multiprocessing`` backend already imposes.  Since the ``repro.api``
port, every built-in sweep's points reference their function by
``"module:qualname"`` string and name systems/workloads by registry key,
so the pickled payload is plain data: no function objects (and, unless a
test passes an explicit config, no configuration dataclasses) cross the
wire, and workers resolve the names by import on their side.

Frame types:

========== =============================================================
``hello``   worker -> coordinator greeting (``pid``, ``proto``, ``slots``)
``point``   coordinator -> worker: one sweep point (``task_id``, ``point``)
``result``  worker -> coordinator: ``task_id`` + ``ok`` +
            ``result``/``error``
``shutdown`` coordinator -> worker: drain and exit
========== =============================================================

Protocol version 2 adds *credit-based pipelining*: the ``hello`` frame
advertises ``slots`` — how many points the worker can execute
concurrently — and the coordinator keeps at most that many ``point``
frames outstanding per connection.  ``result`` frames may arrive in any
order; the echoed ``task_id`` matches them back to their points.  A
version-1 peer is still understood: a ``hello`` without ``slots`` means
one slot, which degrades exactly to the old one-point-at-a-time lockstep.

Protocol version 3 adds the always-on sweep service (``repro serve``):

- *job-scoped task ids*: the service multiplexes many concurrent jobs
  over one worker fleet, so ``point`` frames carry ``"<job>/<index>"``
  string task ids instead of bare run-local integers.  Workers have
  always treated ``task_id`` as an opaque token to echo back, so a v2
  (or even v1) worker serves a v3 coordinator unchanged.
- *version negotiation*: the coordinator answers a ``hello`` with a
  ``welcome`` frame carrying the negotiated version
  (``min(coordinator, worker)``, via :func:`negotiate_proto`).  v2
  workers log-and-ignore unknown frame types, so the ``welcome`` is
  backward compatible too.
- *client frames* (``client_hello`` / ``submit`` / ``status`` /
  ``result`` / ``watch`` / ``cancel``), spoken between ``repro
  submit``-style clients and the service — see :mod:`repro.service`.

The pickle payload means workers must only ever connect to a coordinator
they trust (and vice versa); the harness binds to localhost by default.
"""

from __future__ import annotations

import asyncio
import base64
import json
import pickle
import socket
import struct
from typing import Dict, Optional, Tuple

from repro.harness.spec import PointResult, SweepPoint

#: Wire protocol version, carried in ``hello`` frames.  Version 2 added
#: multi-slot workers and out-of-order ``result`` frames; version 3 added
#: job-scoped task ids, ``welcome`` negotiation and the service's client
#: frames.
PROTOCOL_VERSION = 3

#: Frames larger than this are rejected as corrupt rather than allocated.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def send_frame(sock: socket.socket, message: Dict[str, object]) -> None:
    """Serialise ``message`` as one length-prefixed JSON frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Read one frame, or ``None`` if the peer closed the connection."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"oversized frame ({length} bytes)")
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    message = json.loads(payload.decode("utf-8"))
    if not isinstance(message, dict):
        raise ConnectionError("malformed frame: expected a JSON object")
    return message


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on a clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None  # peer closed between frames
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def encode_point(point: SweepPoint) -> str:
    """Pack a sweep point for transport inside a JSON frame."""
    return base64.b64encode(pickle.dumps(point)).decode("ascii")


def decode_point(blob: str) -> SweepPoint:
    """Inverse of :func:`encode_point`."""
    point = pickle.loads(base64.b64decode(blob.encode("ascii")))
    if not isinstance(point, SweepPoint):
        raise ConnectionError(
            f"frame payload decoded to {type(point).__name__}, not SweepPoint")
    return point


def encode_result(result: PointResult) -> str:
    """Pack a point result for transport inside a JSON frame.

    Results are pickled like points are, not flattened to JSON, so rows
    keep their exact Python types (tuples stay tuples) and distributed
    sweeps stay row-for-row identical to serial ones.
    """
    return base64.b64encode(pickle.dumps(result)).decode("ascii")


def decode_result(blob: str) -> PointResult:
    """Inverse of :func:`encode_result`."""
    result = pickle.loads(base64.b64decode(blob.encode("ascii")))
    if not isinstance(result, PointResult):
        raise ConnectionError(
            f"frame payload decoded to {type(result).__name__}, not PointResult")
    return result


# --------------------------------------------------------------------------- #
# Asyncio stream variants (the ``repro serve`` service speaks these)
# --------------------------------------------------------------------------- #
async def read_frame_async(reader: asyncio.StreamReader
                           ) -> Optional[Dict[str, object]]:
    """Async :func:`recv_frame`: one frame, or ``None`` on a clean EOF."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # peer closed between frames
        raise ConnectionError("connection closed mid-frame") from error
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"oversized frame ({length} bytes)")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ConnectionError("connection closed mid-frame") from error
    message = json.loads(payload.decode("utf-8"))
    if not isinstance(message, dict):
        raise ConnectionError("malformed frame: expected a JSON object")
    return message


async def write_frame_async(writer: asyncio.StreamWriter,
                            message: Dict[str, object]) -> None:
    """Async :func:`send_frame`."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    writer.write(_LENGTH.pack(len(payload)) + payload)
    await writer.drain()


# --------------------------------------------------------------------------- #
# Version negotiation and job-scoped task ids (protocol v3)
# --------------------------------------------------------------------------- #
def negotiate_proto(hello: Dict[str, object]) -> int:
    """The protocol version a coordinator speaks to this peer.

    ``min(ours, theirs)``; a missing or malformed advert counts as
    version 1, the lockstep protocol every peer understands.
    """
    proto = hello.get("proto", 1)
    if not isinstance(proto, int) or isinstance(proto, bool) or proto < 1:
        proto = 1
    return min(PROTOCOL_VERSION, proto)


def make_task_id(job_id: str, index: int) -> str:
    """The job-scoped task id of one point of one service job."""
    return f"{job_id}/{index}"


def split_task_id(task_id: object) -> Optional[Tuple[str, int]]:
    """Parse a job-scoped task id back to ``(job_id, index)``.

    ``None`` for anything malformed (workers echo task ids verbatim, so a
    bad one means a confused or hostile peer, not a crash).
    """
    if not isinstance(task_id, str):
        return None
    job_id, sep, index = task_id.rpartition("/")
    if not sep or not job_id or not index.isdigit():
        return None
    return job_id, int(index)


def hello_slots(hello: Dict[str, object]) -> int:
    """Execution slots a ``hello`` frame advertises.

    A version-1 peer (or a malformed advert) counts as one slot, so old
    workers interoperate with a version-2 coordinator as plain serial
    executors.
    """
    slots = hello.get("slots", 1)
    if not isinstance(slots, int) or isinstance(slots, bool) or slots < 1:
        return 1
    return slots


def parse_address(address: str) -> "tuple[str, int]":
    """Split ``host:port`` (the form both CLI flags use) into its parts."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)
