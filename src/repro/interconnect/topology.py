"""Network topologies: 2D torus and crossbar.

A topology knows where nodes sit and how many link hops separate any pair.
It is purely geometric — message timing lives in
:class:`repro.interconnect.network.NetworkModel`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import InterconnectError


class Topology(ABC):
    """Abstract topology: a set of named nodes and a hop-count metric."""

    def __init__(self, node_names: Sequence[str]) -> None:
        if len(set(node_names)) != len(node_names):
            raise InterconnectError("node names must be unique")
        self._names: List[str] = list(node_names)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self._names)}

    @property
    def nodes(self) -> List[str]:
        """Node names in placement order."""
        return list(self._names)

    def node_index(self, name: str) -> int:
        """Return the placement index of ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise InterconnectError(f"unknown network node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @abstractmethod
    def hops(self, src: str, dst: str) -> int:
        """Number of link traversals between ``src`` and ``dst``."""


@dataclass(frozen=True)
class TorusCoordinate:
    """Position of a node on the 2D torus grid."""

    x: int
    y: int


class Torus2DTopology(Topology):
    """A 2D torus with dimension-order (X then Y) minimal routing.

    Nodes are placed row-major onto a ``width`` × ``height`` grid; the grid
    is sized up automatically if more nodes than ``width*height`` are given
    is an error.  Wrap-around links make the distance in each dimension
    ``min(|d|, size - |d|)``.
    """

    def __init__(self, node_names: Sequence[str], width: int, height: int) -> None:
        super().__init__(node_names)
        if width <= 0 or height <= 0:
            raise InterconnectError("torus dimensions must be positive")
        if len(node_names) > width * height:
            raise InterconnectError(
                f"{len(node_names)} nodes do not fit a {width}x{height} torus"
            )
        self.width = width
        self.height = height
        self._coords: Dict[str, TorusCoordinate] = {}
        for index, name in enumerate(self.nodes):
            self._coords[name] = TorusCoordinate(x=index % width, y=index // width)

    @staticmethod
    def fit(node_names: Sequence[str]) -> "Torus2DTopology":
        """Build a torus just big enough (roughly square) for the nodes."""
        count = max(1, len(node_names))
        width = 1
        while width * width < count:
            width += 1
        height = (count + width - 1) // width
        return Torus2DTopology(node_names, width=width, height=height)

    def coordinate(self, name: str) -> TorusCoordinate:
        """Return the grid coordinate of ``name``."""
        self.node_index(name)
        return self._coords[name]

    def _wrap_distance(self, a: int, b: int, size: int) -> int:
        direct = abs(a - b)
        return min(direct, size - direct)

    def hops(self, src: str, dst: str) -> int:
        if src == dst:
            return 0
        a = self.coordinate(src)
        b = self.coordinate(dst)
        return (self._wrap_distance(a.x, b.x, self.width)
                + self._wrap_distance(a.y, b.y, self.height))

    def route(self, src: str, dst: str) -> List[TorusCoordinate]:
        """Return the dimension-order route as a list of coordinates.

        The route includes the source and destination coordinates and is
        used by tests and by the (optional) per-link contention model.
        """
        a = self.coordinate(src)
        b = self.coordinate(dst)
        path = [a]
        x, y = a.x, a.y

        def step_towards(current: int, target: int, size: int) -> int:
            if current == target:
                return current
            forward = (target - current) % size
            backward = (current - target) % size
            if forward <= backward:
                return (current + 1) % size
            return (current - 1) % size

        while x != b.x:
            x = step_towards(x, b.x, self.width)
            path.append(TorusCoordinate(x=x, y=y))
        while y != b.y:
            y = step_towards(y, b.y, self.height)
            path.append(TorusCoordinate(x=x, y=y))
        return path


class CrossbarTopology(Topology):
    """A full crossbar: every node is one hop from every other node.

    Used for the APU baseline, whose CPU cores are connected to each other
    via a crossbar and to the memory controllers directly (Table 2).
    """

    def hops(self, src: str, dst: str) -> int:
        self.node_index(src)
        self.node_index(dst)
        return 0 if src == dst else 1


def pair_key(src: str, dst: str) -> Tuple[str, str]:
    """Canonical unordered pair key for per-link statistics."""
    return (src, dst) if src <= dst else (dst, src)
