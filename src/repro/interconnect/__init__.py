"""On-chip interconnection networks.

The CCSVM chip connects CPU cores, MTTOP cores, the L2/directory banks and
the memory controller over a 2D torus (Figure 1 of the paper, drawn as a
mesh for clarity) with dimension-order routing and 12 GB/s links (Table 2).
The APU baseline uses a crossbar between CPU cores and a full connection to
the memory controllers, also per Table 2.
"""

from repro.interconnect.topology import CrossbarTopology, Torus2DTopology, Topology
from repro.interconnect.network import Message, NetworkModel

__all__ = [
    "CrossbarTopology",
    "Message",
    "NetworkModel",
    "Topology",
    "Torus2DTopology",
]
