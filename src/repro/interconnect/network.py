"""Message timing over a topology.

The network model charges each message a per-hop router/link latency plus a
serialisation delay derived from the configured link bandwidth (12 GB/s in
Table 2).  Contention is not modelled — consistent with the paper's
deliberately conservative, unoptimised memory system — but every message,
hop and byte is counted so experiments can report traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.interconnect.topology import Topology
from repro.sim.clock import ns_to_ps
from repro.sim.stats import StatsRegistry

#: Control messages (requests, invalidations, acks) are a few header bytes.
CONTROL_MESSAGE_BYTES = 8

#: Data messages carry a cache line plus a header.
DATA_MESSAGE_BYTES = 72


@dataclass(frozen=True)
class Message:
    """A single network traversal, returned for inspection/testing."""

    src: str
    dst: str
    size_bytes: int
    hops: int
    latency_ps: int
    kind: str = "data"


class NetworkModel:
    """Computes message latencies over a :class:`Topology`.

    Parameters
    ----------
    topology:
        Node placement and hop metric.
    link_bandwidth_gbps:
        Link bandwidth in gigabytes per second (12 GB/s in Table 2).
    per_hop_latency_ns:
        Router pipeline plus link traversal latency for each hop.
    """

    def __init__(self, topology: Topology,
                 link_bandwidth_gbps: float = 12.0,
                 per_hop_latency_ns: float = 1.0,
                 stats: Optional[StatsRegistry] = None,
                 name: str = "network") -> None:
        self.topology = topology
        self.link_bandwidth_gbps = link_bandwidth_gbps
        self.per_hop_latency_ps = ns_to_ps(per_hop_latency_ns)
        self.stats = stats if stats is not None else StatsRegistry()
        self.name = name

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #
    def _serialisation_ps(self, size_bytes: int) -> int:
        if self.link_bandwidth_gbps <= 0:
            return 0
        bytes_per_ns = self.link_bandwidth_gbps  # 1 GB/s == 1 byte/ns
        return ns_to_ps(size_bytes / bytes_per_ns)

    def send(self, src: str, dst: str, size_bytes: int = DATA_MESSAGE_BYTES,
             kind: str = "data") -> Message:
        """Send one message and return its accounting record.

        A message between a node and itself (for example a core whose home
        L2 bank is co-located) still pays the serialisation delay but no hop
        latency.
        """
        hops = self.topology.hops(src, dst)
        latency = hops * self.per_hop_latency_ps + self._serialisation_ps(size_bytes)
        self.stats.add(f"{self.name}.messages")
        self.stats.add(f"{self.name}.messages_{kind}")
        self.stats.add(f"{self.name}.hops", hops)
        self.stats.add(f"{self.name}.bytes", size_bytes)
        return Message(src=src, dst=dst, size_bytes=size_bytes, hops=hops,
                       latency_ps=latency, kind=kind)

    def control(self, src: str, dst: str, kind: str = "control") -> Message:
        """Send a small control message (request, invalidation, ack)."""
        return self.send(src, dst, size_bytes=CONTROL_MESSAGE_BYTES, kind=kind)

    def data(self, src: str, dst: str, kind: str = "data") -> Message:
        """Send a cache-line-sized data message."""
        return self.send(src, dst, size_bytes=DATA_MESSAGE_BYTES, kind=kind)

    def round_trip(self, a: str, b: str,
                   request_bytes: int = CONTROL_MESSAGE_BYTES,
                   response_bytes: int = DATA_MESSAGE_BYTES) -> int:
        """Latency of a request/response pair between ``a`` and ``b``."""
        there = self.send(a, b, size_bytes=request_bytes, kind="request")
        back = self.send(b, a, size_bytes=response_bytes, kind="response")
        return there.latency_ps + back.latency_ps

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total_messages(self) -> int:
        """Number of messages sent so far."""
        return self.stats.get(f"{self.name}.messages")

    @property
    def total_bytes(self) -> int:
        """Total bytes carried so far."""
        return self.stats.get(f"{self.name}.bytes")
