"""Scenario declarations loadable from TOML and JSON files.

``repro sweep --scenario study.toml`` (or ``.json``) runs a declarative
study without touching source — the file carries exactly the fields a
:class:`repro.api.Scenario` is constructed from::

    # study.toml
    workload = "barnes_hut"
    systems = ["apu-shared-l2", "ccsvm-l3"]
    seed = 5
    name = "shape-study"

    [grid]
    bodies = [8, 16]

    [params]
    timesteps = 1

    [overrides]
    "l3.total_size_bytes" = "8MiB"
    "cpu.l1_replacement" = "plru"

The same document as JSON uses the same keys (``grid``/``params``/
``overrides`` as objects).  Values follow the same rules as the CLI
flags: grid axes may be lists or scalars, override values may be strings
coerced by :func:`repro.config.apply_overrides` (so ``"8MiB"`` works),
and hierarchy-shape paths (``l3.enabled``, ``tlb_enabled``,
``cpu.l2_shared``) are ordinary override paths.

TOML parsing uses the standard library ``tomllib`` (Python 3.11+); on
older interpreters TOML files raise a clear error and JSON remains fully
supported — no third-party dependency is introduced.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.errors import ReproError

try:
    import tomllib  # Python 3.11+
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    tomllib = None


class ScenarioFileError(ReproError):
    """A scenario file could not be read or did not describe a scenario."""


#: The keys a scenario document may carry, mapping 1:1 onto
#: :class:`repro.api.Scenario` constructor parameters.
_SCALAR_KEYS = ("workload", "seed", "name", "group", "derive")
_MAPPING_KEYS = ("grid", "params", "overrides", "full_grid")
_ALLOWED_KEYS = frozenset(_SCALAR_KEYS + _MAPPING_KEYS + ("systems",))


def load_document(path: str) -> Dict[str, object]:
    """Read a TOML or JSON declaration file into a plain mapping.

    Shared by scenario files (``repro sweep --scenario``) and design-space
    files (``repro dse --space``): the same extension dispatch, the same
    stdlib-``tomllib`` policy (3.11+; JSON everywhere), the same
    :class:`ScenarioFileError` s for unreadable or unparseable documents.
    Validation of the document's *keys* stays with each caller.
    """
    extension = os.path.splitext(path)[1].lower()
    try:
        if extension == ".json":
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        if extension == ".toml":
            if tomllib is None:
                raise ScenarioFileError(
                    f"cannot read {path}: TOML scenario files need Python "
                    "3.11+ (tomllib); use the JSON form on this interpreter")
            with open(path, "rb") as handle:
                return tomllib.load(handle)
    except ScenarioFileError:
        raise
    except OSError as error:
        raise ScenarioFileError(f"cannot read {path}: {error}") from error
    except ValueError as error:
        # json.JSONDecodeError and tomllib.TOMLDecodeError both derive
        # from ValueError.
        raise ScenarioFileError(f"cannot parse {path}: {error}") from error
    raise ScenarioFileError(
        f"cannot read {path}: unsupported scenario file type "
        f"{extension or '(none)'!r}; expected .toml or .json")


def load_scenario_mapping(path: str) -> Dict[str, object]:
    """Read a scenario file into validated ``Scenario`` keyword arguments.

    The result maps 1:1 onto :class:`repro.api.Scenario` parameters;
    unknown keys and mis-typed sections fail here — naming the valid
    keys — before any simulation work starts.
    """
    document = load_document(path)
    if not isinstance(document, dict):
        raise ScenarioFileError(
            f"{path}: a scenario file must be a table/object at top level, "
            f"got {type(document).__name__}")
    unknown = set(document) - _ALLOWED_KEYS
    if unknown:
        raise ScenarioFileError(
            f"{path}: unknown scenario keys {', '.join(sorted(unknown))}; "
            f"valid keys: {', '.join(sorted(_ALLOWED_KEYS))}")

    kwargs: Dict[str, object] = {}
    for key in _SCALAR_KEYS:
        if key in document:
            kwargs[key] = document[key]
    if "systems" in document:
        systems = document["systems"]
        if isinstance(systems, str):
            systems = tuple(name for name in systems.split(",") if name)
        elif isinstance(systems, (list, tuple)):
            systems = tuple(systems)
        else:
            raise ScenarioFileError(
                f"{path}: 'systems' must be a list or a comma-separated "
                f"string, got {type(systems).__name__}")
        kwargs["systems"] = systems
    for key in _MAPPING_KEYS:
        if key in document:
            section = document[key]
            if not isinstance(section, dict):
                raise ScenarioFileError(
                    f"{path}: {key!r} must be a table/object, "
                    f"got {type(section).__name__}")
            kwargs[key] = dict(section)
    return kwargs


def scenario_from_file(path: str, cli_systems: Optional[tuple] = None,
                       cli_grid: Optional[Dict[str, object]] = None,
                       cli_params: Optional[Dict[str, object]] = None,
                       cli_overrides: Optional[Dict[str, object]] = None,
                       cli_seed: Optional[int] = None,
                       cli_name: Optional[str] = None,
                       cli_workload: Optional[str] = None):
    """Build a :class:`repro.api.Scenario` from ``path`` plus CLI overlays.

    Explicit command-line values win over (grid/params/overrides: merge
    into; scalars: replace) the file's, so a declared study can be
    re-pointed — another seed, one more override — without editing it.
    """
    from repro.api import Scenario

    kwargs = load_scenario_mapping(path)
    if cli_workload:
        kwargs["workload"] = cli_workload
    if "workload" not in kwargs:
        raise ScenarioFileError(
            f"{path}: no 'workload' declared and none given on the "
            "command line")
    if cli_systems:
        kwargs["systems"] = cli_systems
    kwargs.setdefault("systems", ("cpu",))
    for key, overlay in (("grid", cli_grid), ("params", cli_params),
                         ("overrides", cli_overrides)):
        if overlay:
            merged = dict(kwargs.get(key) or {})
            merged.update(overlay)
            kwargs[key] = merged
    if cli_seed is not None:
        kwargs["seed"] = cli_seed
    if cli_name is not None:
        kwargs["name"] = cli_name
    return Scenario(**kwargs)
