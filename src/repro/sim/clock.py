"""Time base and clock-domain helpers.

All simulated time in this package is kept as an integer number of
picoseconds.  Using integers keeps the event ordering exact (no floating
point ties) and picoseconds are fine-grained enough to represent both the
2.9 GHz CPU clock (≈345 ps per cycle) and the 600 MHz MTTOP clock
(≈1667 ps per cycle) from Table 2 of the paper without rounding a cycle to
zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Picoseconds per nanosecond.
PS_PER_NS = 1_000

#: Picoseconds per second.
PS_PER_SECOND = 1_000_000_000_000


def ns_to_ps(nanoseconds: float) -> int:
    """Convert a duration in nanoseconds to integer picoseconds."""
    return int(round(nanoseconds * PS_PER_NS))


def ps_to_ns(picoseconds: int) -> float:
    """Convert a duration in picoseconds to nanoseconds."""
    return picoseconds / PS_PER_NS


def ps_to_seconds(picoseconds: int) -> float:
    """Convert a duration in picoseconds to seconds."""
    return picoseconds / PS_PER_SECOND


def hz_to_period_ps(frequency_hz: float) -> int:
    """Return the clock period, in picoseconds, of a clock at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ConfigurationError(f"clock frequency must be positive, got {frequency_hz}")
    return max(1, int(round(PS_PER_SECOND / frequency_hz)))


@dataclass(frozen=True)
class ClockDomain:
    """A named clock with a fixed frequency.

    Components convert between their own cycles and the global picosecond
    time base through their clock domain, so cores running at different
    frequencies (CPU vs. MTTOP) can coexist on one engine.
    """

    name: str
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"clock domain {self.name!r} must have a positive frequency"
            )

    @property
    def period_ps(self) -> int:
        """Duration of one cycle in picoseconds."""
        return hz_to_period_ps(self.frequency_hz)

    def cycles_to_ps(self, cycles: float) -> int:
        """Convert a (possibly fractional) cycle count to picoseconds."""
        return int(round(cycles * self.period_ps))

    def ps_to_cycles(self, picoseconds: int) -> float:
        """Convert picoseconds to (fractional) cycles of this domain."""
        return picoseconds / self.period_ps

    @staticmethod
    def from_ghz(name: str, gigahertz: float) -> "ClockDomain":
        """Build a clock domain from a frequency expressed in GHz."""
        return ClockDomain(name=name, frequency_hz=gigahertz * 1e9)

    @staticmethod
    def from_mhz(name: str, megahertz: float) -> "ClockDomain":
        """Build a clock domain from a frequency expressed in MHz."""
        return ClockDomain(name=name, frequency_hz=megahertz * 1e6)
