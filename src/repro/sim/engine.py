"""Event-ordered simulation engine.

The engine owns a set of :class:`Agent` objects (CPU cores, MTTOP cores, DMA
engines, ...).  Each agent keeps a *local clock* in picoseconds.  The engine
repeatedly picks the runnable agent with the smallest local clock and asks it
to perform one step of work (typically: execute one instruction or one warp
instruction, including any memory-system latency it incurs).

Because exactly one agent steps at a time and agents are always stepped in
global time order, the interleaving of memory operations is a total order
that respects each agent's program order — i.e. the execution is sequentially
consistent by construction, matching the consistency model the paper's
strawman CCSVM design provides (Section 3.2.3).

Scheduling
----------

The ready queue is an indexed min-heap keyed on ``(local_time_ps,
registration_index)``.  Agents notify the engine whenever their scheduling
state changes (clock movement, block, wake, finish) through property setters
on :class:`Agent`, so the engine never rescans the agent list per step.
Heap entries carry a per-agent version number and are invalidated lazily: a
popped entry whose version no longer matches the agent's current version is
simply discarded.  Ties on ``local_time_ps`` break by registration order,
which is exactly the order the historical linear scan produced, so the two
schedulers are step-for-step equivalent (``Engine(scheduler="linear")``
keeps the O(n) scan around for equivalence tests and benchmarks).
"""

from __future__ import annotations

import enum
import heapq
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError


class StepOutcome(enum.Enum):
    """What an agent did when it was stepped."""

    RAN = "ran"          #: performed work and advanced its clock
    BLOCKED = "blocked"  #: cannot progress until another agent wakes it
    FINISHED = "finished"  #: has no more work, permanently


class Agent(ABC):
    """A schedulable actor with its own local clock.

    Subclasses implement :meth:`step`, which must either perform one unit of
    work (advancing :attr:`local_time_ps` by a positive amount), declare the
    agent blocked, or declare it finished.

    ``local_time_ps``, ``blocked`` and ``finished`` are properties whose
    setters notify the owning engine, keeping its ready queue current without
    per-step rescans.  External code (tests, cores, the MIFD) may keep
    assigning them directly.
    """

    def __init__(self, name: str) -> None:
        self._engine: Optional["Engine"] = None
        self._reg_index: int = -1
        self._sched_version: int = 0
        self.name = name
        self._local_time_ps: int = 0
        self._blocked: bool = False
        self._finished: bool = False

    @abstractmethod
    def step(self) -> StepOutcome:
        """Perform one unit of work.  Called only when runnable."""

    # ------------------------------------------------------------------ #
    # Scheduling state (engine-notifying properties)
    # ------------------------------------------------------------------ #
    @property
    def local_time_ps(self) -> int:
        """The agent's local clock in picoseconds."""
        return self._local_time_ps

    @local_time_ps.setter
    def local_time_ps(self, value: int) -> None:
        self._local_time_ps = value
        if self._engine is not None:
            self._engine._on_agent_state_change(self)

    @property
    def blocked(self) -> bool:
        """True while the agent waits for another agent to wake it."""
        return self._blocked

    @blocked.setter
    def blocked(self, value: bool) -> None:
        self._blocked = value
        if self._engine is not None:
            self._engine._on_agent_state_change(self)

    @property
    def finished(self) -> bool:
        """True once the agent has permanently run out of work."""
        return self._finished

    @finished.setter
    def finished(self, value: bool) -> None:
        self._finished = value
        if self._engine is not None:
            self._engine._on_agent_state_change(self)

    # ------------------------------------------------------------------ #
    # State helpers used by other components
    # ------------------------------------------------------------------ #
    @property
    def runnable(self) -> bool:
        """True when the engine may step this agent."""
        return not self._blocked and not self._finished

    def block(self) -> StepOutcome:
        """Mark this agent blocked and return the corresponding outcome."""
        self.blocked = True
        return StepOutcome.BLOCKED

    def finish(self) -> StepOutcome:
        """Mark this agent permanently finished."""
        self.finished = True
        return StepOutcome.FINISHED

    def wake(self, at_time_ps: int) -> None:
        """Unblock the agent, ensuring its clock is at least ``at_time_ps``.

        Waking never moves a clock backwards: an agent that was busy past
        ``at_time_ps`` simply resumes at its own (later) time.
        """
        self.blocked = False
        if at_time_ps > self._local_time_ps:
            self.local_time_ps = at_time_ps

    def advance(self, duration_ps: int) -> None:
        """Advance the local clock by ``duration_ps`` (must be >= 0)."""
        if duration_ps < 0:
            raise SimulationError(f"agent {self.name} tried to advance time by {duration_ps}")
        self.local_time_ps = self._local_time_ps + duration_ps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else ("blocked" if self._blocked else "runnable")
        return f"<{type(self).__name__} {self.name} t={self._local_time_ps}ps {state}>"


class Engine:
    """Steps agents in global-time order until everything finishes.

    Parameters
    ----------
    max_steps:
        Safety limit on the total number of agent steps; exceeded limits
        raise :class:`SimulationError` rather than hanging a test run.
    scheduler:
        ``"heap"`` (default) uses the indexed min-heap ready queue;
        ``"linear"`` keeps the historical O(n) scan per step.  Both produce
        the identical deterministic step order.
    """

    def __init__(self, max_steps: int = 200_000_000,
                 scheduler: str = "heap") -> None:
        if scheduler not in ("heap", "linear"):
            raise SimulationError(f"unknown scheduler {scheduler!r}")
        self._agents: List[Agent] = []
        self._names: Dict[str, Agent] = {}
        self.max_steps = max_steps
        self.scheduler = scheduler
        self.steps_executed = 0
        self.now_ps = 0
        #: Ready-queue entries: (local_time_ps, registration_index, version).
        self._heap: List[Tuple[int, int, int]] = []
        #: The agent currently inside step(); its own notifications are
        #: deferred until the step returns.
        self._stepping: Optional[Agent] = None

    # ------------------------------------------------------------------ #
    # Agent management
    # ------------------------------------------------------------------ #
    def add_agent(self, agent: Agent) -> Agent:
        """Register ``agent`` with the engine and return it."""
        if agent.name in self._names:
            raise SimulationError(f"duplicate agent name {agent.name!r}")
        agent._reg_index = len(self._agents)
        self._agents.append(agent)
        self._names[agent.name] = agent
        agent._engine = self
        self._reschedule(agent)
        return agent

    def agent(self, name: str) -> Agent:
        """Look up a registered agent by name."""
        try:
            return self._names[name]
        except KeyError:
            raise SimulationError(f"no agent named {name!r}") from None

    @property
    def agents(self) -> List[Agent]:
        """The registered agents, in registration order."""
        return list(self._agents)

    # ------------------------------------------------------------------ #
    # Ready queue maintenance
    # ------------------------------------------------------------------ #
    def _reschedule(self, agent: Agent) -> None:
        """Invalidate the agent's old heap entries and enqueue its current state."""
        agent._sched_version += 1
        if self.scheduler != "heap":
            return  # the linear scan never reads the heap; don't grow it
        if not agent._blocked and not agent._finished:
            heapq.heappush(
                self._heap,
                (agent._local_time_ps, agent._reg_index, agent._sched_version))

    def _on_agent_state_change(self, agent: Agent) -> None:
        """Callback from Agent property setters (block/wake/finish/clock)."""
        if agent is self._stepping:
            # The stepping agent is re-enqueued once its step completes;
            # intermediate clock movements would only pile up stale entries.
            return
        self._reschedule(agent)

    def _next_runnable(self) -> Optional[Agent]:
        if self.scheduler == "linear":
            best: Optional[Agent] = None
            for agent in self._agents:
                if not agent.runnable:
                    continue
                if best is None or agent.local_time_ps < best.local_time_ps:
                    best = agent
            return best

        heap = self._heap
        agents = self._agents
        while heap:
            _, reg_index, version = heap[0]
            agent = agents[reg_index]
            if (version != agent._sched_version
                    or agent._blocked or agent._finished):
                heapq.heappop(heap)  # stale entry; drop and keep looking
                continue
            return agent
        return None

    def _step_agent(self, agent: Agent) -> StepOutcome:
        """Step ``agent`` once, enforcing clock monotonicity for RAN outcomes."""
        self.steps_executed += 1
        if self.scheduler == "heap":
            heapq.heappop(self._heap)  # the (validated) entry for `agent`
        self._stepping = agent
        before = agent._local_time_ps
        try:
            outcome = agent.step()
        finally:
            self._stepping = None
        if outcome is StepOutcome.RAN and agent._local_time_ps <= before:
            # Zero-time steps are allowed only when the agent changed
            # state (blocked/finished); otherwise the engine could loop
            # forever at a single timestamp.
            agent._local_time_ps = before + 1
        if self.scheduler == "heap":
            self._reschedule(agent)
        if agent._local_time_ps > self.now_ps:
            self.now_ps = agent._local_time_ps
        return outcome

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, until_ps: Optional[int] = None) -> int:
        """Run until every agent is finished (or blocked forever).

        Returns the final global time in picoseconds (the maximum local
        clock over all agents that did any work).  Raises
        :class:`DeadlockError` if unfinished agents remain but none are
        runnable, and :class:`SimulationError` if the step limit is hit.
        """
        while True:
            agent = self._next_runnable()
            if agent is None:
                unfinished = [a.name for a in self._agents if not a.finished]
                if unfinished:
                    raise DeadlockError(
                        "no runnable agents but these never finished: "
                        + ", ".join(sorted(unfinished))
                    )
                break
            if until_ps is not None and agent.local_time_ps >= until_ps:
                break
            if self.steps_executed >= self.max_steps:
                raise SimulationError(
                    f"exceeded max_steps={self.max_steps}; likely livelock "
                    f"(last agent: {agent.name})"
                )
            self._step_agent(agent)
        return self.now_ps

    def run_step(self) -> Optional[Agent]:
        """Step exactly one agent (the earliest runnable one), if any.

        Returns the agent that was stepped, or ``None`` when nothing is
        runnable.  Intended for tests that need fine-grained control.
        Applies the same zero-time-step monotonicity guard as :meth:`run`.
        """
        agent = self._next_runnable()
        if agent is None:
            return None
        self._step_agent(agent)
        return agent
