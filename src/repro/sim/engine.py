"""Event-ordered simulation engine.

The engine owns a set of :class:`Agent` objects (CPU cores, MTTOP cores, DMA
engines, ...).  Each agent keeps a *local clock* in picoseconds.  The engine
repeatedly picks the runnable agent with the smallest local clock and asks it
to perform one step of work (typically: execute one instruction or one warp
instruction, including any memory-system latency it incurs).

Because exactly one agent steps at a time and agents are always stepped in
global time order, the interleaving of memory operations is a total order
that respects each agent's program order — i.e. the execution is sequentially
consistent by construction, matching the consistency model the paper's
strawman CCSVM design provides (Section 3.2.3).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from repro.errors import DeadlockError, SimulationError


class StepOutcome(enum.Enum):
    """What an agent did when it was stepped."""

    RAN = "ran"          #: performed work and advanced its clock
    BLOCKED = "blocked"  #: cannot progress until another agent wakes it
    FINISHED = "finished"  #: has no more work, permanently


class Agent(ABC):
    """A schedulable actor with its own local clock.

    Subclasses implement :meth:`step`, which must either perform one unit of
    work (advancing :attr:`local_time_ps` by a positive amount), declare the
    agent blocked, or declare it finished.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.local_time_ps: int = 0
        self.blocked: bool = False
        self.finished: bool = False

    @abstractmethod
    def step(self) -> StepOutcome:
        """Perform one unit of work.  Called only when runnable."""

    # ------------------------------------------------------------------ #
    # State helpers used by other components
    # ------------------------------------------------------------------ #
    @property
    def runnable(self) -> bool:
        """True when the engine may step this agent."""
        return not self.blocked and not self.finished

    def block(self) -> StepOutcome:
        """Mark this agent blocked and return the corresponding outcome."""
        self.blocked = True
        return StepOutcome.BLOCKED

    def finish(self) -> StepOutcome:
        """Mark this agent permanently finished."""
        self.finished = True
        return StepOutcome.FINISHED

    def wake(self, at_time_ps: int) -> None:
        """Unblock the agent, ensuring its clock is at least ``at_time_ps``.

        Waking never moves a clock backwards: an agent that was busy past
        ``at_time_ps`` simply resumes at its own (later) time.
        """
        self.blocked = False
        if at_time_ps > self.local_time_ps:
            self.local_time_ps = at_time_ps

    def advance(self, duration_ps: int) -> None:
        """Advance the local clock by ``duration_ps`` (must be >= 0)."""
        if duration_ps < 0:
            raise SimulationError(f"agent {self.name} tried to advance time by {duration_ps}")
        self.local_time_ps += duration_ps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else ("blocked" if self.blocked else "runnable")
        return f"<{type(self).__name__} {self.name} t={self.local_time_ps}ps {state}>"


class Engine:
    """Steps agents in global-time order until everything finishes.

    Parameters
    ----------
    max_steps:
        Safety limit on the total number of agent steps; exceeded limits
        raise :class:`SimulationError` rather than hanging a test run.
    """

    def __init__(self, max_steps: int = 200_000_000) -> None:
        self._agents: List[Agent] = []
        self._names: Dict[str, Agent] = {}
        self.max_steps = max_steps
        self.steps_executed = 0
        self.now_ps = 0

    # ------------------------------------------------------------------ #
    # Agent management
    # ------------------------------------------------------------------ #
    def add_agent(self, agent: Agent) -> Agent:
        """Register ``agent`` with the engine and return it."""
        if agent.name in self._names:
            raise SimulationError(f"duplicate agent name {agent.name!r}")
        self._agents.append(agent)
        self._names[agent.name] = agent
        return agent

    def agent(self, name: str) -> Agent:
        """Look up a registered agent by name."""
        try:
            return self._names[name]
        except KeyError:
            raise SimulationError(f"no agent named {name!r}") from None

    @property
    def agents(self) -> List[Agent]:
        """The registered agents, in registration order."""
        return list(self._agents)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _next_runnable(self) -> Optional[Agent]:
        best: Optional[Agent] = None
        for agent in self._agents:
            if not agent.runnable:
                continue
            if best is None or agent.local_time_ps < best.local_time_ps:
                best = agent
        return best

    def run(self, until_ps: Optional[int] = None) -> int:
        """Run until every agent is finished (or blocked forever).

        Returns the final global time in picoseconds (the maximum local
        clock over all agents that did any work).  Raises
        :class:`DeadlockError` if unfinished agents remain but none are
        runnable, and :class:`SimulationError` if the step limit is hit.
        """
        while True:
            agent = self._next_runnable()
            if agent is None:
                unfinished = [a.name for a in self._agents if not a.finished]
                if unfinished:
                    raise DeadlockError(
                        "no runnable agents but these never finished: "
                        + ", ".join(sorted(unfinished))
                    )
                break
            if until_ps is not None and agent.local_time_ps >= until_ps:
                break
            self.steps_executed += 1
            if self.steps_executed > self.max_steps:
                raise SimulationError(
                    f"exceeded max_steps={self.max_steps}; likely livelock "
                    f"(last agent: {agent.name})"
                )
            before = agent.local_time_ps
            outcome = agent.step()
            if outcome is StepOutcome.RAN and agent.local_time_ps <= before:
                # Zero-time steps are allowed only when the agent changed
                # state (blocked/finished); otherwise the engine could loop
                # forever at a single timestamp.
                agent.local_time_ps = before + 1
            if agent.local_time_ps > self.now_ps:
                self.now_ps = agent.local_time_ps
        return self.now_ps

    def run_step(self) -> Optional[Agent]:
        """Step exactly one agent (the earliest runnable one), if any.

        Returns the agent that was stepped, or ``None`` when nothing is
        runnable.  Intended for tests that need fine-grained control.
        """
        agent = self._next_runnable()
        if agent is None:
            return None
        self.steps_executed += 1
        agent.step()
        if agent.local_time_ps > self.now_ps:
            self.now_ps = agent.local_time_ps
        return agent
