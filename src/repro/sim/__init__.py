"""Simulation kernel: time base, event-ordered engine and statistics.

The engine used throughout the package is deliberately simple.  Every agent
(a CPU core, an MTTOP core, a DMA engine, ...) keeps a *local clock* in
picoseconds.  The engine repeatedly steps the agent with the smallest local
clock, so the global interleaving of memory operations is deterministic and
totally ordered by time — which is exactly the sequentially consistent
execution the paper's strawman design provides (Section 3.2.3).
"""

from repro.sim.clock import PS_PER_NS, ClockDomain, ns_to_ps, ps_to_ns, ps_to_seconds
from repro.sim.engine import Agent, Engine, StepOutcome
from repro.sim.stats import StatsRegistry

__all__ = [
    "Agent",
    "ClockDomain",
    "Engine",
    "PS_PER_NS",
    "StatsRegistry",
    "StepOutcome",
    "ns_to_ps",
    "ps_to_ns",
    "ps_to_seconds",
]
