"""Simulation kernel: time base, event-ordered engine and statistics.

The engine used throughout the package is deliberately simple.  Every agent
(a CPU core, an MTTOP core, a DMA engine, ...) keeps a *local clock* in
picoseconds.  The engine repeatedly steps the agent with the smallest local
clock, so the global interleaving of memory operations is deterministic and
totally ordered by time — which is exactly the sequentially consistent
execution the paper's strawman design provides (Section 3.2.3).

The next-agent choice is served by an indexed min-heap ready queue keyed on
``(local_time_ps, registration_index)`` and maintained through block / wake
/ finish callbacks, so the per-step cost is O(log n) instead of an O(n)
rescan; ties break by registration order, which keeps the step order
bit-identical to the historical linear scan (still available as
``Engine(scheduler="linear")``).
"""

from repro.sim.clock import PS_PER_NS, ClockDomain, ns_to_ps, ps_to_ns, ps_to_seconds
from repro.sim.engine import Agent, Engine, StepOutcome
from repro.sim.stats import StatsRegistry

__all__ = [
    "Agent",
    "ClockDomain",
    "Engine",
    "PS_PER_NS",
    "StatsRegistry",
    "StepOutcome",
    "ns_to_ps",
    "ps_to_ns",
    "ps_to_seconds",
]
