"""Statistics collection.

Every component of the simulated machine (caches, directories, TLBs, DRAM,
networks, runtimes) records what it did into a shared :class:`StatsRegistry`.
The registry is a flat mapping from dotted counter names (for example
``"l1d.cpu0.hits"`` or ``"dram.reads"``) to integer counts, plus a small
number of derived helpers.  Keeping it flat and string-keyed makes it trivial
to diff two runs, render tables for the experiment harness and assert on in
tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class StatsRegistry:
    """A flat registry of named integer counters.

    The registry intentionally does not pre-declare counters: the first
    increment of a name creates it.  Reads of unknown names return zero, so
    report code never has to special-case components that were configured
    out of a run.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (which may be negative)."""
        self._counters[name] += amount

    def set(self, name: str, value: int) -> None:
        """Overwrite counter ``name`` with ``value``."""
        self._counters[name] = value

    def max(self, name: str, value: int) -> None:
        """Record the maximum of the current value and ``value``."""
        if value > self._counters[name]:
            self._counters[name] = value

    def reset(self) -> None:
        """Clear every counter."""
        self._counters.clear()

    def merge(self, other: "StatsRegistry") -> None:
        """Add every counter of ``other`` into this registry."""
        for name, value in other.items():
            self._counters[name] += value

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> int:
        """Return the value of ``name`` (zero if never incremented)."""
        return self._counters.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate over ``(name, value)`` pairs in sorted name order."""
        return iter(sorted(self._counters.items()))

    def names(self) -> Iterable[str]:
        """Return the counter names in sorted order."""
        return sorted(self._counters)

    def to_dict(self) -> Dict[str, int]:
        """Return a plain ``dict`` snapshot of every counter."""
        return dict(self._counters)

    # ------------------------------------------------------------------ #
    # Aggregation helpers
    # ------------------------------------------------------------------ #
    def sum(self, prefix: str = "", suffix: str = "") -> int:
        """Sum every counter whose name matches ``prefix`` and ``suffix``.

        Both filters are plain string prefix/suffix matches; either may be
        empty.  ``sum()`` with no arguments totals every counter, which is
        rarely meaningful but occasionally useful in tests.
        """
        total = 0
        for name, value in self._counters.items():
            if name.startswith(prefix) and name.endswith(suffix):
                total += value
        return total

    def group(self, prefix: str) -> Dict[str, int]:
        """Return counters under ``prefix`` with the prefix stripped.

        ``group("dram.")`` returns, e.g., ``{"reads": 10, "writes": 4}``.
        """
        out: Dict[str, int] = {}
        for name, value in self._counters.items():
            if name.startswith(prefix):
                out[name[len(prefix):]] = value
        return out

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return ``numerator / denominator`` treating 0/0 as 0.0."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render(self, prefix: str = "") -> str:
        """Render matching counters as an aligned, human-readable table."""
        rows = [(name, value) for name, value in self.items() if name.startswith(prefix)]
        if not rows:
            return "(no counters)"
        width = max(len(name) for name, _ in rows)
        lines = [f"{name.ljust(width)}  {value}" for name, value in rows]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsRegistry({len(self._counters)} counters)"


def diff(before: Mapping[str, int], after: Mapping[str, int]) -> Dict[str, int]:
    """Return ``after - before`` per counter, dropping zero deltas.

    Useful for measuring what a region of a simulation did: snapshot with
    :meth:`StatsRegistry.to_dict` before and after, then diff.
    """
    out: Dict[str, int] = {}
    for name in set(before) | set(after):
        delta = after.get(name, 0) - before.get(name, 0)
        if delta:
            out[name] = delta
    return out
