"""Columnar helper kernels for the batched memory-access engine.

The batch engine (:mod:`repro.mem.batch`) classifies whole address vectors
at once.  Its inner arithmetic — shifting a vector of addresses down to
page/line keys and finding the boundaries of *runs* of equal keys — is the
only part that vectorizes cleanly, so it lives here behind a two-kernel
interface:

* a **numpy kernel**, used when numpy is importable (numpy is a dev-only
  dependency; the simulator never requires it at runtime);
* a **pure-Python kernel** built on the stdlib :mod:`array` module,
  used otherwise or when ``REPRO_NO_NUMPY=1`` is set in the environment.

Both kernels produce identical results — the equivalence tests run the
same op streams through each — and the choice is made once at import.
Everything stateful (TLB LRU order, cache replacement, counters) stays in
the owning structures; these helpers are pure functions of their inputs.
"""

from __future__ import annotations

import os
from array import array
from typing import List, Sequence

_np = None
if os.environ.get("REPRO_NO_NUMPY", "") not in ("1", "true", "yes", "on"):
    try:  # pragma: no cover - exercised via the no-numpy CI leg
        import numpy as _np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover
        _np = None

#: True when the numpy kernel was selected at import.
USING_NUMPY = _np is not None


# --------------------------------------------------------------------------- #
# numpy kernel
# --------------------------------------------------------------------------- #
def _shift_keys_numpy(values: Sequence[int], lo: int, hi: int,
                      shift: int) -> Sequence[int]:
    # Returns an ndarray: run_starts() consumes it without another copy,
    # and element access / dict lookups hash identically to Python ints.
    arr = _np.asarray(values[lo:hi], dtype=_np.int64)
    return arr >> shift


def _run_starts_numpy(keys: Sequence[int]) -> List[int]:
    n = len(keys)
    if n <= 1:
        return [0] if n else []
    arr = _np.asarray(keys, dtype=_np.int64)
    changes = _np.flatnonzero(arr[1:] != arr[:-1]) + 1
    return [0] + changes.tolist()


def _add_delta_numpy(values: Sequence[int], lo: int, hi: int,
                     delta: int) -> List[int]:
    arr = _np.asarray(values[lo:hi], dtype=_np.int64)
    return (arr + delta).tolist()


# --------------------------------------------------------------------------- #
# pure-Python (array-module) kernel
# --------------------------------------------------------------------------- #
def _shift_keys_python(values: Sequence[int], lo: int, hi: int,
                       shift: int) -> Sequence[int]:
    return array("q", (values[i] >> shift for i in range(lo, hi)))


def _run_starts_python(keys: Sequence[int]) -> List[int]:
    if not keys:
        return []
    starts = [0]
    append = starts.append
    previous = keys[0]
    for index in range(1, len(keys)):
        key = keys[index]
        if key != previous:
            append(index)
            previous = key
    return starts


def _add_delta_python(values: Sequence[int], lo: int, hi: int,
                      delta: int) -> List[int]:
    return [values[i] + delta for i in range(lo, hi)]


# --------------------------------------------------------------------------- #
# Import-time selection (callers read these through the module object, so
# tests can monkeypatch them to force either kernel in-process).
# --------------------------------------------------------------------------- #
if USING_NUMPY:
    shift_keys = _shift_keys_numpy
    run_starts = _run_starts_numpy
    add_delta = _add_delta_numpy
else:  # pragma: no cover - exercised via the no-numpy CI leg
    shift_keys = _shift_keys_python
    run_starts = _run_starts_python
    add_delta = _add_delta_python


def use_python_kernel() -> None:
    """Rebind the module to the pure-Python kernel (tests only)."""
    global shift_keys, run_starts, add_delta, USING_NUMPY
    shift_keys = _shift_keys_python
    run_starts = _run_starts_python
    add_delta = _add_delta_python
    USING_NUMPY = False


def use_numpy_kernel() -> bool:
    """Rebind the module to the numpy kernel; returns False without numpy."""
    global shift_keys, run_starts, add_delta, USING_NUMPY
    if _np is None:
        return False
    shift_keys = _shift_keys_numpy
    run_starts = _run_starts_numpy
    add_delta = _add_delta_numpy
    USING_NUMPY = True
    return True
