"""Columnar helper kernels for the batched memory-access engine.

The batch engine (:mod:`repro.mem.batch`) classifies whole address vectors
at once.  Its inner arithmetic — shifting a vector of addresses down to
page/line keys and finding the boundaries of *runs* of equal keys — is the
only part that vectorizes cleanly, so it lives here behind a two-kernel
interface:

* a **numpy kernel**, used when numpy is importable (numpy is a dev-only
  dependency; the simulator never requires it at runtime);
* a **pure-Python kernel** built on the stdlib :mod:`array` module,
  used otherwise or when ``REPRO_NO_NUMPY=1`` is set in the environment.

Both kernels produce identical results — the equivalence tests run the
same op streams through each — and the choice is made once at import.
Everything stateful (TLB LRU order, cache replacement, counters) stays in
the owning structures; these helpers are pure functions of their inputs.
"""

from __future__ import annotations

import os
from array import array
from typing import List, Sequence

_np = None
if os.environ.get("REPRO_NO_NUMPY", "") not in ("1", "true", "yes", "on"):
    try:  # pragma: no cover - exercised via the no-numpy CI leg
        import numpy as _np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover
        _np = None

#: True when the numpy kernel was selected at import.
USING_NUMPY = _np is not None


# --------------------------------------------------------------------------- #
# numpy kernel
# --------------------------------------------------------------------------- #
def _shift_keys_numpy(values: Sequence[int], lo: int, hi: int,
                      shift: int) -> Sequence[int]:
    # Returns an ndarray: run_starts() consumes it without another copy,
    # and element access / dict lookups hash identically to Python ints.
    arr = _np.asarray(values[lo:hi], dtype=_np.int64)
    return arr >> shift


def _run_starts_numpy(keys: Sequence[int]) -> List[int]:
    n = len(keys)
    if n <= 1:
        return [0] if n else []
    arr = _np.asarray(keys, dtype=_np.int64)
    changes = _np.flatnonzero(arr[1:] != arr[:-1]) + 1
    return [0] + changes.tolist()


def _add_delta_numpy(values: Sequence[int], lo: int, hi: int,
                     delta: int) -> Sequence[int]:
    # Callers invoke this once per page run; short runs (random access
    # streams degenerate to length 1-2) are cheaper as a comprehension
    # than as an ndarray round trip.  Long runs stay ndarrays — the
    # consumers (cache gather, address masking) take them without another
    # conversion, and element access yields ints that hash and compare
    # like Python's.
    if hi - lo < 64:
        return [values[i] + delta for i in range(lo, hi)]
    arr = _np.asarray(values[lo:hi], dtype=_np.int64)
    return arr + delta


def _concat_runs_numpy(parts):
    if len(parts) == 1:
        return parts[0]
    return _np.concatenate([_np.asarray(p, dtype=_np.int64) for p in parts])


def _split_columns_numpy(ops):
    # zip(*ops) transposes at C speed — measurably faster than one
    # (n, 4) matrix conversion, and it keeps the address/operand columns
    # as native ints (operands may exceed int64; addresses feed scalar
    # paths).  Only the kind column — small codes, used by the batch
    # engines' vector trim — becomes an ndarray; scalar consumers index
    # it like a list.
    kinds, vaddrs, vals, vals2 = zip(*ops)
    if not any(kinds):
        return list(vaddrs), None, None, None
    kinds_col = _np.asarray(kinds, dtype=_np.int64)
    return list(vaddrs), kinds_col, list(vals), list(vals2)


# --------------------------------------------------------------------------- #
# pure-Python (array-module) kernel
# --------------------------------------------------------------------------- #
def _shift_keys_python(values: Sequence[int], lo: int, hi: int,
                       shift: int) -> Sequence[int]:
    return array("q", (values[i] >> shift for i in range(lo, hi)))


def _run_starts_python(keys: Sequence[int]) -> List[int]:
    if not keys:
        return []
    starts = [0]
    append = starts.append
    previous = keys[0]
    for index in range(1, len(keys)):
        key = keys[index]
        if key != previous:
            append(index)
            previous = key
    return starts


def _add_delta_python(values: Sequence[int], lo: int, hi: int,
                      delta: int) -> List[int]:
    return [values[i] + delta for i in range(lo, hi)]


def _concat_runs_python(parts):
    if len(parts) == 1:
        return parts[0]
    out: List[int] = []
    for part in parts:
        out.extend(part)
    return out


def _split_columns_python(ops):
    # zip(*ops) transposes the tuples at C speed.
    kinds, vaddrs, vals, vals2 = map(list, zip(*ops))
    if not any(kinds):
        return vaddrs, None, None, None
    return vaddrs, kinds, vals, vals2


# --------------------------------------------------------------------------- #
# Import-time selection (callers read these through the module object, so
# tests can monkeypatch them to force either kernel in-process).
# --------------------------------------------------------------------------- #
if USING_NUMPY:
    shift_keys = _shift_keys_numpy
    run_starts = _run_starts_numpy
    add_delta = _add_delta_numpy
    concat_runs = _concat_runs_numpy
    split_columns = _split_columns_numpy
else:  # pragma: no cover - exercised via the no-numpy CI leg
    shift_keys = _shift_keys_python
    run_starts = _run_starts_python
    add_delta = _add_delta_python
    concat_runs = _concat_runs_python
    split_columns = _split_columns_python


def numpy_module():
    """The numpy module when importable (regardless of kernel binding)."""
    return _np


def use_python_kernel() -> None:
    """Rebind the module to the pure-Python kernel (tests only)."""
    global shift_keys, run_starts, add_delta, concat_runs, split_columns, \
        USING_NUMPY
    shift_keys = _shift_keys_python
    run_starts = _run_starts_python
    add_delta = _add_delta_python
    concat_runs = _concat_runs_python
    split_columns = _split_columns_python
    USING_NUMPY = False


def use_numpy_kernel() -> bool:
    """Rebind the module to the numpy kernel; returns False without numpy."""
    global shift_keys, run_starts, add_delta, concat_runs, split_columns, \
        USING_NUMPY
    if _np is None:
        return False
    shift_keys = _shift_keys_numpy
    run_starts = _run_starts_numpy
    add_delta = _add_delta_numpy
    concat_runs = _concat_runs_numpy
    split_columns = _split_columns_numpy
    USING_NUMPY = True
    return True
