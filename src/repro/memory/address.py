"""Address arithmetic used across the memory system.

The system model uses x86-like constants: 4 KiB pages, 64-byte cache lines
and 8-byte machine words.  Every helper works on plain integers so the rest
of the code never needs a wrapper class for addresses.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import AlignmentError

#: Size of a virtual-memory page in bytes (x86 small pages).
PAGE_SIZE = 4096

#: Size of a cache line in bytes (Table 2 systems use 64-byte lines).
CACHE_LINE_SIZE = 64

#: Size of a machine word in bytes.  Workload kernels operate on 64-bit words.
WORD_SIZE = 8


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def align_down(address: int, alignment: int) -> int:
    """Round ``address`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise AlignmentError(f"alignment must be a power of two, got {alignment}")
    return address & ~(alignment - 1)


def align_up(address: int, alignment: int) -> int:
    """Round ``address`` up to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise AlignmentError(f"alignment must be a power of two, got {alignment}")
    return (address + alignment - 1) & ~(alignment - 1)


def is_aligned(address: int, alignment: int) -> bool:
    """Return True when ``address`` is a multiple of ``alignment``."""
    if not is_power_of_two(alignment):
        raise AlignmentError(f"alignment must be a power of two, got {alignment}")
    return (address & (alignment - 1)) == 0


# --------------------------------------------------------------------------- #
# Page helpers
# --------------------------------------------------------------------------- #
def page_number(address: int, page_size: int = PAGE_SIZE) -> int:
    """Return the virtual/physical page number containing ``address``."""
    return address // page_size


def page_offset(address: int, page_size: int = PAGE_SIZE) -> int:
    """Return the offset of ``address`` within its page."""
    return address % page_size


def page_address(address: int, page_size: int = PAGE_SIZE) -> int:
    """Return the base address of the page containing ``address``."""
    return align_down(address, page_size)


# --------------------------------------------------------------------------- #
# Cache-line helpers
# --------------------------------------------------------------------------- #
def line_address(address: int, line_size: int = CACHE_LINE_SIZE) -> int:
    """Return the base address of the cache line containing ``address``."""
    return align_down(address, line_size)


def line_offset(address: int, line_size: int = CACHE_LINE_SIZE) -> int:
    """Return the offset of ``address`` within its cache line."""
    return address & (line_size - 1)


def lines_in_range(start: int, length: int, line_size: int = CACHE_LINE_SIZE) -> Iterator[int]:
    """Yield the base address of every cache line touched by ``[start, start+length)``."""
    if length <= 0:
        return
    first = line_address(start, line_size)
    last = line_address(start + length - 1, line_size)
    yield from range(first, last + 1, line_size)


def words_in_range(start: int, length: int, word_size: int = WORD_SIZE) -> Iterator[int]:
    """Yield the base address of every word touched by ``[start, start+length)``."""
    if length <= 0:
        return
    first = align_down(start, word_size)
    last = align_down(start + length - 1, word_size)
    yield from range(first, last + 1, word_size)
