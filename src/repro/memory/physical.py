"""Physical memory backing store and frame allocator.

The backing store keeps real data so that simulated workloads compute real
results (which the test suite checks against golden references).  Values are
stored at machine-word (8-byte) granularity in a sparse dictionary: only
words that have ever been written consume host memory, which lets us model a
2 GiB physical address space cheaply.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AlignmentError, OutOfPhysicalMemoryError, UnmappedAddressError
from repro.memory.address import PAGE_SIZE, WORD_SIZE, align_down, is_aligned

#: Mask used to wrap stored values to 64 bits, mirroring real hardware words.
WORD_MASK = (1 << 64) - 1


def to_signed(value: int) -> int:
    """Interpret a 64-bit word as a signed integer."""
    value &= WORD_MASK
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def to_unsigned(value: int) -> int:
    """Wrap a (possibly negative) integer into a 64-bit word."""
    return value & WORD_MASK


class FrameAllocator:
    """Allocates physical page frames from a fixed-size memory.

    Frames are handed out in ascending address order and may be freed and
    reused.  The operating-system model (:mod:`repro.vm.manager`) uses one
    allocator per machine.
    """

    def __init__(self, total_bytes: int, page_size: int = PAGE_SIZE,
                 reserved_bytes: int = 0) -> None:
        if total_bytes <= 0 or total_bytes % page_size != 0:
            raise AlignmentError(
                f"physical memory size {total_bytes} must be a positive multiple "
                f"of the page size {page_size}"
            )
        if reserved_bytes % page_size != 0:
            raise AlignmentError("reserved region must be page aligned")
        self.total_bytes = total_bytes
        self.page_size = page_size
        self.reserved_bytes = reserved_bytes
        self._next_frame = reserved_bytes
        self._free_frames: List[int] = []
        self._allocated: set[int] = set()

    @property
    def total_frames(self) -> int:
        """Total number of allocatable frames."""
        return (self.total_bytes - self.reserved_bytes) // self.page_size

    @property
    def allocated_frames(self) -> int:
        """Number of frames currently allocated."""
        return len(self._allocated)

    @property
    def free_frames(self) -> int:
        """Number of frames still available."""
        return self.total_frames - self.allocated_frames

    def allocate(self) -> int:
        """Allocate one frame and return its physical base address."""
        if self._free_frames:
            frame = self._free_frames.pop()
        elif self._next_frame + self.page_size <= self.total_bytes:
            frame = self._next_frame
            self._next_frame += self.page_size
        else:
            raise OutOfPhysicalMemoryError(
                f"all {self.total_frames} physical frames are in use"
            )
        self._allocated.add(frame)
        return frame

    def free(self, frame_address: int) -> None:
        """Return a previously allocated frame to the free pool."""
        if not is_aligned(frame_address, self.page_size):
            raise AlignmentError(f"frame address {frame_address:#x} is not page aligned")
        if frame_address not in self._allocated:
            raise UnmappedAddressError(
                f"frame {frame_address:#x} was not allocated (double free?)"
            )
        self._allocated.remove(frame_address)
        self._free_frames.append(frame_address)

    def is_allocated(self, frame_address: int) -> bool:
        """Return True when ``frame_address`` is a currently allocated frame."""
        return align_down(frame_address, self.page_size) in self._allocated


class PhysicalMemory:
    """Word-granularity physical memory with real contents.

    Reads of never-written words return zero (as if the frame were
    zero-filled at allocation time).  All accesses must stay inside the
    configured physical address space.
    """

    def __init__(self, size_bytes: int, page_size: int = PAGE_SIZE) -> None:
        if size_bytes <= 0:
            raise AlignmentError("physical memory size must be positive")
        self.size_bytes = size_bytes
        self.page_size = page_size
        self._words: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Word access
    # ------------------------------------------------------------------ #
    def _check(self, paddr: int) -> int:
        if paddr < 0 or paddr + WORD_SIZE > self.size_bytes:
            raise UnmappedAddressError(
                f"physical address {paddr:#x} outside memory of {self.size_bytes} bytes"
            )
        return align_down(paddr, WORD_SIZE)

    def read_word(self, paddr: int) -> int:
        """Read the 64-bit word containing ``paddr`` (signed value)."""
        word_addr = self._check(paddr)
        return to_signed(self._words.get(word_addr, 0))

    def write_word(self, paddr: int, value: int) -> None:
        """Write ``value`` to the 64-bit word containing ``paddr``."""
        word_addr = self._check(paddr)
        self._words[word_addr] = to_unsigned(value)

    def read_unsigned(self, paddr: int) -> int:
        """Read the word containing ``paddr`` as an unsigned 64-bit value."""
        word_addr = self._check(paddr)
        return self._words.get(word_addr, 0)

    # ------------------------------------------------------------------ #
    # Bulk helpers (used by DMA models and tests)
    # ------------------------------------------------------------------ #
    def read_words(self, paddr: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at ``paddr``."""
        return [self.read_word(paddr + i * WORD_SIZE) for i in range(count)]

    def write_words(self, paddr: int, values: List[int]) -> None:
        """Write consecutive words starting at ``paddr``."""
        for i, value in enumerate(values):
            self.write_word(paddr + i * WORD_SIZE, value)

    def copy(self, src_paddr: int, dst_paddr: int, length_bytes: int) -> None:
        """Copy ``length_bytes`` (word aligned) from ``src_paddr`` to ``dst_paddr``."""
        if length_bytes % WORD_SIZE != 0:
            raise AlignmentError("copy length must be a multiple of the word size")
        words = self.read_words(src_paddr, length_bytes // WORD_SIZE)
        self.write_words(dst_paddr, words)

    def zero_page(self, frame_address: int) -> None:
        """Zero-fill the frame starting at ``frame_address``."""
        base = align_down(frame_address, self.page_size)
        for offset in range(0, self.page_size, WORD_SIZE):
            self._words.pop(base + offset, None)

    @property
    def words_written(self) -> int:
        """Number of distinct words that have ever been written (for tests)."""
        return len(self._words)

    def snapshot(self, paddr: int, count: int) -> Optional[List[int]]:
        """Return ``count`` words starting at ``paddr`` (signed), for debugging."""
        return self.read_words(paddr, count)
