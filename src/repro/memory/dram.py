"""Off-chip DRAM timing and access accounting.

Figure 9 of the paper compares the *number of off-chip DRAM accesses* needed
by the APU and by the CCSVM chip for the same workload, so the DRAM model's
primary job is exact access counting; timing is a simple fixed access latency
plus an optional bandwidth term, which is all the evaluation needs (the paper
uses a 100 ns latency for the simulated system and 72 ns for the APU).
"""

from __future__ import annotations

from typing import Optional

from repro.memory.address import CACHE_LINE_SIZE
from repro.sim.clock import ns_to_ps
from repro.sim.stats import StatsRegistry


class DRAMModel:
    """A single off-chip DRAM channel.

    Parameters
    ----------
    latency_ns:
        Access latency charged to every read or write.
    bandwidth_bytes_per_ns:
        Optional peak bandwidth; when set, each access additionally pays a
        serialisation delay of ``size / bandwidth``.
    stats:
        Registry that receives ``<name>.reads``, ``<name>.writes``,
        ``<name>.bytes_read`` and ``<name>.bytes_written`` counters.
    """

    def __init__(self, latency_ns: float, stats: Optional[StatsRegistry] = None,
                 name: str = "dram",
                 bandwidth_bytes_per_ns: Optional[float] = None) -> None:
        self.name = name
        self.latency_ps = ns_to_ps(latency_ns)
        self.bandwidth_bytes_per_ns = bandwidth_bytes_per_ns
        self.stats = stats if stats is not None else StatsRegistry()

    # ------------------------------------------------------------------ #
    # Access API
    # ------------------------------------------------------------------ #
    def _serialisation_ps(self, size_bytes: int) -> int:
        if not self.bandwidth_bytes_per_ns:
            return 0
        return ns_to_ps(size_bytes / self.bandwidth_bytes_per_ns)

    def read(self, size_bytes: int = CACHE_LINE_SIZE) -> int:
        """Perform a read of ``size_bytes`` and return its latency in ps."""
        self.stats.add(f"{self.name}.reads")
        self.stats.add(f"{self.name}.bytes_read", size_bytes)
        return self.latency_ps + self._serialisation_ps(size_bytes)

    def write(self, size_bytes: int = CACHE_LINE_SIZE) -> int:
        """Perform a write of ``size_bytes`` and return its latency in ps."""
        self.stats.add(f"{self.name}.writes")
        self.stats.add(f"{self.name}.bytes_written", size_bytes)
        return self.latency_ps + self._serialisation_ps(size_bytes)

    def access(self, is_write: bool, size_bytes: int = CACHE_LINE_SIZE) -> int:
        """Perform a read or write depending on ``is_write``."""
        if is_write:
            return self.write(size_bytes)
        return self.read(size_bytes)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total_accesses(self) -> int:
        """Total number of reads plus writes performed so far."""
        return self.stats.get(f"{self.name}.reads") + self.stats.get(f"{self.name}.writes")

    @property
    def total_bytes(self) -> int:
        """Total bytes moved to or from DRAM so far."""
        return (self.stats.get(f"{self.name}.bytes_read")
                + self.stats.get(f"{self.name}.bytes_written"))
