"""Physical memory substrate: addressing helpers, backing store and DRAM.

The simulated machine stores real values (64-bit words) in a
:class:`~repro.memory.physical.PhysicalMemory`, so workloads compute real
results that tests can compare against golden references.  Timing and
off-chip access counting live in :class:`~repro.memory.dram.DRAMModel`.
"""

from repro.memory.address import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    WORD_SIZE,
    align_down,
    align_up,
    is_aligned,
    line_address,
    line_offset,
    lines_in_range,
    page_address,
    page_number,
    page_offset,
    words_in_range,
)
from repro.memory.dram import DRAMModel
from repro.memory.physical import FrameAllocator, PhysicalMemory

__all__ = [
    "CACHE_LINE_SIZE",
    "DRAMModel",
    "FrameAllocator",
    "PAGE_SIZE",
    "PhysicalMemory",
    "WORD_SIZE",
    "align_down",
    "align_up",
    "is_aligned",
    "line_address",
    "line_offset",
    "lines_in_range",
    "page_address",
    "page_number",
    "page_offset",
    "words_in_range",
]
