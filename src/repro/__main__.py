"""``python -m repro`` entry point for the sweep harness CLI."""

import sys

from repro.harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
