"""Content-addressed, provenance-carrying result store on a filesystem.

Layout (everything under one root directory, shareable over any mounted
or synced filesystem)::

    <root>/
      objects/<hh>/<hash>.json   # one result entry; <hash> = sha256 of
                                 # the file's exact bytes, <hh> its first
                                 # two hex digits (git-style fan-out)
      index/<spec>/<key>.json    # point key -> object hash (+ point id)
      quarantine/                # corrupt objects/markers, moved aside

An *object* is the JSON document ``{"point_id", "rows", "stats",
"provenance"}`` serialized deterministically (insertion-ordered keys —
row key order is rendered column order — and no whitespace), so its
content hash is reproducible.  The *index* maps a
point's configuration key (:func:`~repro.store.keys.point_cache_key`) to
the object holding its latest result; re-running a point writes a new
object (fresh provenance) and atomically repoints the marker — the old
object becomes unreferenced until ``gc`` collects it.

Every write is tmp-file + ``os.replace`` with a per-process-unique tmp
name, so any number of concurrent writers (two coordinators sharing a
mount, the sweep service, CI) can write one store without torn reads:
readers only ever see absent files or complete ones.  A corrupt or
truncated entry — hash mismatch, undecodable JSON, wrong shape — is
*quarantined* (moved to ``quarantine/``, visible in ``repro cache
info``) instead of silently ignored, and the point recomputes.

A legacy flat ``.repro-cache/<spec>/<hash>.json`` directory is migrated
in place the first time a store opens it: each readable legacy entry is
rewrapped as an object (provenance marked ``migrated``) under its
original key — the key schema is frozen (:data:`~repro.store.keys.KEY_SCHEMA`),
so migrated entries keep serving warm hits.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.store.provenance import Provenance

try:  # pragma: no cover - typing fallback for very old interpreters
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

_OBJECTS = "objects"
_INDEX = "index"
_QUARANTINE = "quarantine"
_HEX_NAME = re.compile(r"^[0-9a-f]{64}\.json$")

_tmp_counter = itertools.count()


class StoreError(ReproError):
    """The result store was misused or its layout is unusable."""


@dataclass
class StoreEntry:
    """One point result plus its provenance, as stored."""

    point_id: str
    rows: List[Dict[str, object]]
    stats: Dict[str, object]
    provenance: Provenance


@dataclass
class CacheSpecInfo:
    """Entry count and referenced bytes of one spec's index."""

    spec: str
    entries: int
    bytes: int


@dataclass
class StoreInfo:
    """What ``repro cache info`` reports."""

    root: str
    specs: List[CacheSpecInfo] = field(default_factory=list)
    objects: int = 0
    objects_bytes: int = 0
    quarantined: int = 0
    quarantined_bytes: int = 0
    orphan_tmp: int = 0

    @property
    def entries(self) -> int:
        return sum(info.entries for info in self.specs)


@dataclass
class VerifyReport:
    """Outcome of re-hashing every object against its name."""

    objects: int = 0
    mismatched: List[str] = field(default_factory=list)  #: object hashes
    dangling: List[str] = field(default_factory=list)    #: spec/key markers

    @property
    def ok(self) -> bool:
        return not self.mismatched and not self.dangling


@dataclass
class GcReport:
    """What a ``gc`` pass removed (or would remove, when ``dry_run``)."""

    entries_removed: int = 0
    objects_removed: int = 0
    tmp_removed: int = 0
    bytes_freed: int = 0
    dry_run: bool = False


@dataclass
class SyncReport:
    """What a ``push``/``pull`` copied between two stores."""

    entries_copied: int = 0
    entries_skipped: int = 0
    objects_copied: int = 0
    objects_skipped: int = 0
    corrupt_skipped: int = 0


class ResultStore(Protocol):
    """What a :class:`~repro.harness.runner.SweepRunner` needs of a store."""

    def load(self, spec: str, key: str) -> Optional[StoreEntry]:
        """The entry stored under ``(spec, key)``, or ``None``."""

    def store(self, spec: str, key: str, entry: StoreEntry) -> Optional[str]:
        """Persist ``entry``; returns its content hash, or ``None`` when
        the entry cannot round-trip through the store losslessly."""


def _object_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _encode_object(entry: StoreEntry) -> Optional[bytes]:
    """Deterministic object bytes, or ``None`` if JSON would distort them.

    Rows and stats must survive a JSON round trip *exactly* (tuples
    become lists, int keys become strings, ...): caching a lossy entry
    would make a warm run render differently from a cold one, so such
    points are simply recomputed every run — and counted, see
    ``harness.points_uncacheable``.

    Keys are *not* sorted: a row's key order is its rendered column
    order, so sorting would make a warm run render differently from a
    cold one.  Identical in-memory entries still serialize to identical
    bytes (JSON preserves insertion order), which is all content
    addressing needs.
    """
    payload = {"point_id": entry.point_id, "rows": entry.rows,
               "stats": entry.stats,
               "provenance": entry.provenance.to_json()}
    try:
        text = json.dumps(payload, separators=(",", ":"))
        reloaded = json.loads(text)
    except (TypeError, ValueError):
        return None
    if reloaded["rows"] != entry.rows or reloaded["stats"] != entry.stats:
        return None
    return text.encode("utf-8")


def _decode_object(data: bytes) -> StoreEntry:
    """Parse object bytes; raises ``ValueError`` on any shape problem."""
    payload = json.loads(data.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("object is not a JSON object")
    rows = payload.get("rows")
    stats = payload.get("stats", {})
    if not isinstance(rows, list) or not isinstance(stats, dict):
        raise ValueError("object rows/stats have the wrong shape")
    provenance = Provenance.from_json(payload.get("provenance"))
    return StoreEntry(point_id=str(payload.get("point_id", "")), rows=rows,
                      stats=stats, provenance=provenance)


class FileStore:
    """The filesystem :class:`ResultStore` (see the module docstring).

    Purely lazy: constructing one touches nothing; the first operation
    that needs the directory opens it (migrating a legacy layout if one
    is found), and read-only operations on a store that does not exist
    simply report it empty.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._opened = False

    # ------------------------------------------------------------------ #
    # Paths and plumbing
    # ------------------------------------------------------------------ #
    def _object_path(self, object_hash: str) -> str:
        return os.path.join(self.root, _OBJECTS, object_hash[:2],
                            object_hash + ".json")

    def _marker_path(self, spec: str, key: str) -> str:
        return os.path.join(self.root, _INDEX, spec, key + ".json")

    def _quarantine_dir(self) -> str:
        return os.path.join(self.root, _QUARANTINE)

    def _write_atomic(self, path: str, data: bytes) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.{os.getpid()}-{next(_tmp_counter)}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    def _quarantine(self, path: str) -> None:
        """Move a corrupt file aside so ``info`` can report it.

        Losing the race against a concurrent quarantine (or repair) of
        the same file is fine — the goal is only that the bad bytes stop
        being served and stay inspectable.
        """
        try:
            os.makedirs(self._quarantine_dir(), exist_ok=True)
            target = os.path.join(self._quarantine_dir(),
                                  os.path.basename(path))
            if os.path.exists(target):  # a second corrupt copy; keep both
                target = (f"{target}.{os.getpid()}-"
                          f"{next(_tmp_counter)}.dup")
            os.replace(path, target)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Opening and legacy migration
    # ------------------------------------------------------------------ #
    def _open(self) -> None:
        """Adopt the directory, migrating a legacy flat cache if present."""
        if self._opened:
            return
        self._opened = True
        if not os.path.isdir(self.root):
            return
        if os.path.isdir(os.path.join(self.root, _OBJECTS)) or \
                os.path.isdir(os.path.join(self.root, _INDEX)):
            return  # already the content-addressed layout
        self._migrate_legacy()

    def _legacy_entries(self) -> Iterator[Tuple[str, str]]:
        """``(spec, filename)`` pairs of the old ``<spec>/<hash>.json``."""
        for spec in sorted(os.listdir(self.root)):
            spec_dir = os.path.join(self.root, spec)
            if spec in (_OBJECTS, _INDEX, _QUARANTINE) or \
                    not os.path.isdir(spec_dir):
                continue
            for name in sorted(os.listdir(spec_dir)):
                yield spec, name

    def _migrate_legacy(self) -> None:
        """Rewrap every legacy entry as an object + index marker, in place.

        Legacy entries carry no provenance; the synthesized record is
        marked ``migrated`` with the file's mtime as ``created_at`` and
        ``"legacy"`` placeholders for the unknowable fields.  Unreadable
        legacy files are quarantined, stale ``.tmp`` files dropped.  Two
        stores racing to migrate one directory is safe: every per-file
        step tolerates the file having been moved by the other.
        """
        from datetime import datetime, timezone

        for spec, name in list(self._legacy_entries()):
            path = os.path.join(self.root, spec, name)
            if name.endswith(".tmp"):
                try:
                    os.remove(path)
                except OSError:
                    pass
                continue
            if not _HEX_NAME.match(name):
                continue  # foreign file; leave it alone
            key = name[:-len(".json")]
            try:
                with open(path, "rb") as handle:
                    payload = json.loads(handle.read().decode("utf-8"))
                rows = payload["rows"]
                stats = payload.get("stats", {})
                if not isinstance(rows, list) or not isinstance(stats, dict):
                    raise ValueError("legacy entry rows/stats malformed")
                created = datetime.fromtimestamp(
                    os.path.getmtime(path),
                    timezone.utc).replace(microsecond=0).isoformat()
            except OSError:
                continue  # lost a migration race; nothing to do
            except (ValueError, KeyError, TypeError):
                self._quarantine(path)
                continue
            provenance = Provenance(
                repro_version="legacy", git_sha="unknown", spec=spec,
                point_id=str(payload.get("point_id", "")), func="legacy",
                kwargs_digest="legacy", backend="legacy", host="unknown",
                created_at=created, migrated=True)
            entry = StoreEntry(point_id=str(payload.get("point_id", "")),
                               rows=rows, stats=stats, provenance=provenance)
            if self._store_entry(spec, key, entry) is not None:
                try:
                    os.remove(path)
                except OSError:
                    pass
        # Drop the now-empty legacy spec directories.
        for spec in sorted(os.listdir(self.root)):
            if spec in (_OBJECTS, _INDEX, _QUARANTINE):
                continue
            try:
                os.rmdir(os.path.join(self.root, spec))
            except OSError:
                pass  # foreign files keep the directory alive

    # ------------------------------------------------------------------ #
    # ResultStore: load / store
    # ------------------------------------------------------------------ #
    def load(self, spec: str, key: str) -> Optional[StoreEntry]:
        self._open()
        marker = self._marker_path(spec, key)
        try:
            with open(marker, "rb") as handle:
                pointer = json.loads(handle.read().decode("utf-8"))
            object_hash = pointer["object"]
            if not isinstance(object_hash, str) or len(object_hash) != 64:
                raise ValueError("marker does not name an object")
        except OSError:
            return None  # no entry
        except (ValueError, KeyError, TypeError):
            self._quarantine(marker)
            return None
        path = self._object_path(object_hash)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._remove_marker(marker)
            return None  # dangling marker (object gc'd or never synced)
        if _object_hash(data) != object_hash:
            self._quarantine(path)
            self._remove_marker(marker)
            return None
        try:
            return _decode_object(data)
        except ValueError:
            self._quarantine(path)
            self._remove_marker(marker)
            return None

    def store(self, spec: str, key: str, entry: StoreEntry) -> Optional[str]:
        self._open()
        return self._store_entry(spec, key, entry)

    def _store_entry(self, spec: str, key: str,
                     entry: StoreEntry) -> Optional[str]:
        data = _encode_object(entry)
        if data is None:
            return None
        object_hash = _object_hash(data)
        path = self._object_path(object_hash)
        if not os.path.exists(path):  # content-addressed: write once
            self._write_atomic(path, data)
        marker = {"object": object_hash, "point_id": entry.point_id}
        self._write_atomic(
            self._marker_path(spec, key),
            json.dumps(marker, sort_keys=True,
                       separators=(",", ":")).encode("utf-8"))
        return object_hash

    def _remove_marker(self, marker: str) -> None:
        try:
            os.remove(marker)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #
    def specs(self) -> List[str]:
        self._open()
        index = os.path.join(self.root, _INDEX)
        if not os.path.isdir(index):
            return []
        return sorted(name for name in os.listdir(index)
                      if os.path.isdir(os.path.join(index, name)))

    def markers(self, specs: Optional[List[str]] = None
                ) -> Iterator[Tuple[str, str, str]]:
        """``(spec, key, object_hash)`` for every (valid) index marker."""
        for spec in self.specs():
            if specs and spec not in specs:
                continue
            spec_dir = os.path.join(self.root, _INDEX, spec)
            for name in sorted(os.listdir(spec_dir)):
                if not _HEX_NAME.match(name):
                    continue
                try:
                    with open(os.path.join(spec_dir, name), "rb") as handle:
                        pointer = json.loads(handle.read().decode("utf-8"))
                    object_hash = pointer["object"]
                    if not isinstance(object_hash, str) \
                            or len(object_hash) != 64:
                        raise ValueError
                except OSError:
                    continue
                except (ValueError, KeyError, TypeError):
                    self._quarantine(os.path.join(spec_dir, name))
                    continue
                yield spec, name[:-len(".json")], object_hash

    def object_hashes(self) -> Iterator[str]:
        """Every object present, by content hash."""
        objects = os.path.join(self.root, _OBJECTS)
        if not os.path.isdir(objects):
            return
        for prefix in sorted(os.listdir(objects)):
            prefix_dir = os.path.join(objects, prefix)
            if not os.path.isdir(prefix_dir):
                continue
            for name in sorted(os.listdir(prefix_dir)):
                if _HEX_NAME.match(name):
                    yield name[:-len(".json")]

    def read_object(self, object_hash: str) -> Optional[StoreEntry]:
        """Load one object by content hash (no index involvement)."""
        try:
            with open(self._object_path(object_hash), "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        try:
            return _decode_object(data)
        except ValueError:
            return None

    def _tmp_files(self) -> List[str]:
        found = []
        for root, _, names in os.walk(self.root):
            found.extend(os.path.join(root, name) for name in names
                         if name.endswith(".tmp"))
        return found

    # ------------------------------------------------------------------ #
    # info / clear / verify / gc / push / pull
    # ------------------------------------------------------------------ #
    def info(self) -> StoreInfo:
        self._open()
        report = StoreInfo(root=self.root)
        if not os.path.isdir(self.root):
            return report
        sizes: Dict[str, int] = {}
        for object_hash in self.object_hashes():
            try:
                sizes[object_hash] = os.path.getsize(
                    self._object_path(object_hash))
            except OSError:
                continue
        report.objects = len(sizes)
        report.objects_bytes = sum(sizes.values())
        per_spec: Dict[str, CacheSpecInfo] = {}
        for spec, _key, object_hash in self.markers():
            info = per_spec.setdefault(spec, CacheSpecInfo(spec, 0, 0))
            info.entries += 1
            info.bytes += sizes.get(object_hash, 0)
        report.specs = [per_spec[spec] for spec in sorted(per_spec)]
        quarantine = self._quarantine_dir()
        if os.path.isdir(quarantine):
            for name in os.listdir(quarantine):
                try:
                    report.quarantined_bytes += os.path.getsize(
                        os.path.join(quarantine, name))
                    report.quarantined += 1
                except OSError:
                    continue
        report.orphan_tmp = len(self._tmp_files())
        return report

    def clear(self, specs: Optional[List[str]] = None) -> int:
        """Delete index entries (all, or just ``specs``'); returns the
        count.  Unreferenced objects and stale tmp files go with them."""
        self._open()
        removed = 0
        for spec in self.specs():
            if specs and spec not in specs:
                continue
            spec_dir = os.path.join(self.root, _INDEX, spec)
            for name in os.listdir(spec_dir):
                if not _HEX_NAME.match(name):
                    continue
                try:
                    os.remove(os.path.join(spec_dir, name))
                except OSError:
                    continue
                removed += 1
            try:
                os.rmdir(spec_dir)
            except OSError:
                pass
        self._sweep_unreferenced()
        for tmp in self._tmp_files():
            try:
                os.remove(tmp)
            except OSError:
                pass
        return removed

    def _sweep_unreferenced(self) -> Tuple[int, int]:
        """Drop objects no index marker references; ``(count, bytes)``."""
        referenced = {object_hash
                      for _spec, _key, object_hash in self.markers()}
        removed = 0
        freed = 0
        for object_hash in list(self.object_hashes()):
            if object_hash in referenced:
                continue
            path = self._object_path(object_hash)
            try:
                size = os.path.getsize(path)
                os.remove(path)
            except OSError:
                continue
            removed += 1
            freed += size
            try:
                os.rmdir(os.path.dirname(path))
            except OSError:
                pass
        return removed, freed

    def verify(self) -> VerifyReport:
        """Re-hash every object against its name; list index markers that
        point at missing objects."""
        self._open()
        report = VerifyReport()
        present = set()
        for object_hash in self.object_hashes():
            report.objects += 1
            present.add(object_hash)
            try:
                with open(self._object_path(object_hash), "rb") as handle:
                    data = handle.read()
            except OSError:
                report.mismatched.append(object_hash)
                continue
            if _object_hash(data) != object_hash:
                report.mismatched.append(object_hash)
        for spec, key, object_hash in self.markers():
            if object_hash not in present:
                report.dangling.append(f"{spec}/{key}")
        return report

    def gc(self, specs: Optional[List[str]] = None,
           max_age_days: Optional[float] = None,
           version: Optional[str] = None,
           dry_run: bool = False) -> GcReport:
        """Prune entries by spec / age / producing version.

        With no filters at all this is a pure vacuum: unreferenced
        objects and orphaned tmp files are collected, index entries are
        untouched.  ``dry_run`` reports what would go without removing
        anything.
        """
        self._open()
        report = GcReport(dry_run=dry_run)
        filtered = bool(specs or max_age_days is not None
                        or version is not None)
        doomed: List[str] = []
        if filtered:
            for spec, key, object_hash in self.markers(specs=specs):
                if max_age_days is not None or version is not None:
                    entry = self.read_object(object_hash)
                    provenance = entry.provenance if entry else None
                    if version is not None and (
                            provenance is None
                            or provenance.repro_version != version):
                        continue
                    if max_age_days is not None:
                        age = provenance.age_days if provenance else None
                        if age is None or age <= max_age_days:
                            continue
                doomed.append(self._marker_path(spec, key))
        report.entries_removed = len(doomed)
        tmp_files = self._tmp_files()
        report.tmp_removed = len(tmp_files)
        if dry_run:
            # Estimate the object sweep without mutating anything.
            doomed_set = set(doomed)
            survivors = {object_hash
                         for spec, key, object_hash in self.markers()
                         if self._marker_path(spec, key) not in doomed_set}
            for object_hash in self.object_hashes():
                if object_hash not in survivors:
                    report.objects_removed += 1
                    try:
                        report.bytes_freed += os.path.getsize(
                            self._object_path(object_hash))
                    except OSError:
                        pass
            return report
        for marker in doomed:
            self._remove_marker(marker)
        removed, freed = self._sweep_unreferenced()
        report.objects_removed = removed
        report.bytes_freed = freed
        for tmp in tmp_files:
            try:
                os.remove(tmp)
            except OSError:
                pass
        return report

    def push(self, dest: "FileStore",
             specs: Optional[List[str]] = None) -> SyncReport:
        """Copy entries into ``dest``, skipping hashes already present.

        Content addressing makes this idempotent: objects are compared
        by name (their hash), markers by the object they point to, so a
        second push of an unchanged store copies nothing.  A source
        object whose bytes no longer match its name is quarantined here
        and *not* propagated.
        """
        self._open()
        dest._open()
        report = SyncReport()
        copied_objects = set()
        for spec, key, object_hash in self.markers(specs=specs):
            src_path = self._object_path(object_hash)
            dest_path = dest._object_path(object_hash)
            if not os.path.exists(dest_path):
                try:
                    with open(src_path, "rb") as handle:
                        data = handle.read()
                except OSError:
                    continue  # racing writer removed it; marker is stale
                if _object_hash(data) != object_hash:
                    self._quarantine(src_path)
                    self._remove_marker(self._marker_path(spec, key))
                    report.corrupt_skipped += 1
                    continue
                dest._write_atomic(dest_path, data)
                report.objects_copied += 1
                copied_objects.add(object_hash)
            elif object_hash not in copied_objects:
                report.objects_skipped += 1
            dest_marker = dest._marker_path(spec, key)
            existing = None
            try:
                with open(dest_marker, "rb") as handle:
                    existing = json.loads(handle.read().decode("utf-8"))
            except (OSError, ValueError):
                existing = None
            if isinstance(existing, dict) \
                    and existing.get("object") == object_hash:
                report.entries_skipped += 1
                continue
            try:
                with open(self._marker_path(spec, key), "rb") as handle:
                    marker_bytes = handle.read()
            except OSError:
                continue
            dest._write_atomic(dest_marker, marker_bytes)
            report.entries_copied += 1
        return report

    def pull(self, src: "FileStore",
             specs: Optional[List[str]] = None) -> SyncReport:
        """Copy entries from ``src`` into this store (see :meth:`push`)."""
        return src.push(self, specs=specs)


__all__ = [
    "CacheSpecInfo",
    "FileStore",
    "GcReport",
    "ResultStore",
    "StoreEntry",
    "StoreError",
    "StoreInfo",
    "SyncReport",
    "VerifyReport",
]
