"""Point keys: the stable identity of one sweep point's configuration.

A point's *key* answers "is this the same simulation?" — it hashes the
spec name, point id, the function's ``module:qualname`` reference and a
canonical serialization of the keyword arguments, so any parameter change
(sizes, cache geometry, seeds, ...) changes the key while equal
configurations hash identically in every process.  The key is what the
:class:`~repro.store.filesystem.FileStore` index maps to a content
address; the *content* hash of the stored entry is a separate thing
(see :mod:`repro.store.filesystem`).

Keys embed :data:`KEY_SCHEMA`, **not** the live package version.  Up to
repro 1.5 the key hashed ``repro.__version__`` directly, which invalidated
every cache entry on every release even when results were unchanged.  The
store records the exact producing release in each entry's
:class:`~repro.store.provenance.Provenance` instead (prunable with
``repro cache gc --version``), so the key schema only changes when the key
*computation itself* changes.  ``KEY_SCHEMA`` is frozen at ``"1.5.0"`` —
the release whose key function this store inherited — so entries migrated
from a legacy ``.repro-cache/`` keep their exact keys and stay warm.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.harness.spec import SweepPoint, point_func_ref

#: Frozen key-schema tag (see module docstring).  Bump only when the key
#: computation changes incompatibly — never for ordinary releases.
KEY_SCHEMA = "1.5.0"


def canonical_repr(value: object) -> str:
    """A content-based serialization that is stable across processes.

    ``repr`` alone is not canonical for every configuration value: sets
    iterate in hash order (which ``PYTHONHASHSEED`` perturbs between
    processes for strings) and dicts iterate in insertion order, so two
    equal configurations could serialize differently and miss each other's
    cache entries.  Sets are therefore emitted in sorted element order,
    dict items in sorted key order, and dataclasses are recursed into so
    the same rules apply to nested fields.  Distinct container types keep
    distinct markers so ``[1, 2]``, ``(1, 2)`` and ``{1, 2}`` never
    collide.
    """
    if isinstance(value, dict):
        items = sorted(((canonical_repr(k), canonical_repr(v))
                        for k, v in value.items()), key=lambda kv: kv[0])
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, frozenset):
        return "frozenset{" + ",".join(sorted(map(canonical_repr, value))) + "}"
    if isinstance(value, set):
        return "set{" + ",".join(sorted(map(canonical_repr, value))) + "}"
    if isinstance(value, list):
        return "[" + ",".join(map(canonical_repr, value)) + "]"
    if isinstance(value, tuple):
        return "(" + ",".join(map(canonical_repr, value)) + ")"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{field.name}={canonical_repr(getattr(value, field.name))}"
            for field in dataclasses.fields(value))
        return f"{type(value).__qualname__}({fields})"
    return repr(value)


def kwargs_digest(kwargs: dict) -> str:
    """SHA-256 of the canonical kwargs serialization (a provenance field).

    Two entries with equal digests were configured identically; the digest
    lets provenance records compare configurations without storing the
    full (possibly large) kwargs blob in every entry.
    """
    return hashlib.sha256(
        canonical_repr(kwargs).encode("utf-8")).hexdigest()


def point_cache_key(point: SweepPoint) -> str:
    """A stable hash of everything that determines a point's result.

    The key covers the spec name, the point function's ``module:qualname``
    *reference* (:func:`~repro.harness.spec.point_func_ref` — identical
    whether the point carries the name or the callable) and the
    :func:`canonical_repr` of its keyword arguments — even for kwargs
    containing sets or dicts, whose plain ``repr`` depends on hash seed or
    insertion order.
    """
    payload = "\x1f".join((
        KEY_SCHEMA,
        point.spec,
        point.point_id,
        point_func_ref(point),
        canonical_repr(point.kwargs),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
