"""Content-addressed result store with provenance.

The sweep harness's point cache, promoted to a shareable artifact store:
results live as content-addressed objects (``objects/<hh>/<hash>.json``)
behind a per-spec index of configuration keys, every entry carries a
typed :class:`~repro.store.provenance.Provenance` record (release, git
sha, spec/point, function reference, kwargs digest, seed, backend,
worker, host, duration, timestamp, service job/submitter), corrupt
entries are quarantined instead of silently dropped, and stores sync
between hosts with ``repro cache push``/``pull`` (idempotent by content
address).  ``repro cache gc`` prunes by age/spec/version; ``repro cache
verify`` re-hashes objects against their names.

:class:`~repro.store.filesystem.FileStore` is the filesystem
implementation; :class:`~repro.store.filesystem.ResultStore` is the
protocol the :class:`~repro.harness.runner.SweepRunner` consumes, so
S3-style or database stores can slot in behind the same harness.
"""

from repro.store.filesystem import (
    CacheSpecInfo,
    FileStore,
    GcReport,
    ResultStore,
    StoreEntry,
    StoreError,
    StoreInfo,
    SyncReport,
    VerifyReport,
)
from repro.store.keys import (
    KEY_SCHEMA,
    canonical_repr,
    kwargs_digest,
    point_cache_key,
)
from repro.store.provenance import Provenance, current_git_sha, utc_now_iso

__all__ = [
    "KEY_SCHEMA",
    "CacheSpecInfo",
    "FileStore",
    "GcReport",
    "Provenance",
    "ResultStore",
    "StoreEntry",
    "StoreError",
    "StoreInfo",
    "SyncReport",
    "VerifyReport",
    "canonical_repr",
    "current_git_sha",
    "kwargs_digest",
    "point_cache_key",
    "utc_now_iso",
]
