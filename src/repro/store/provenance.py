"""Typed provenance: who computed a stored result, how, where, and when.

Every entry in a :class:`~repro.store.filesystem.FileStore` carries one
:class:`Provenance` record, so a result pulled from a shared store (or
dug out of a CI artifact months later) stays attributable: the exact
repro release and git revision that produced it, the point's identity
(spec, point id, function reference, configuration digest, seed), and
the execution context (backend, worker, host, wall-clock, and — for
results computed through ``repro serve`` — the job id and submitter).
"""

from __future__ import annotations

import os
import socket
import subprocess
from dataclasses import dataclass, fields
from datetime import datetime, timezone
from typing import Dict, Optional

_git_sha_cache: Optional[str] = None


def current_git_sha() -> str:
    """The repository revision of the running checkout (cached).

    ``"unknown"`` when git (or the repository) is unavailable — an
    installed package, a bare container — so provenance stays writable
    everywhere.
    """
    global _git_sha_cache
    if _git_sha_cache is None:
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True, text=True, check=True,
                timeout=10).stdout.strip() or "unknown"
        except Exception:  # noqa: BLE001 - any failure means "no git here"
            _git_sha_cache = "unknown"
    return _git_sha_cache


def utc_now_iso() -> str:
    """The current instant as an ISO-8601 UTC timestamp (``...Z``-less)."""
    return datetime.now(timezone.utc).replace(microsecond=0).isoformat()


@dataclass(frozen=True)
class Provenance:
    """The full lineage of one stored point result.

    ``duration_s`` is the coordinator-observed completion latency: the
    seconds between the sweep's pending batch starting to execute and
    this point's result arriving back at the coordinator.  On parallel
    backends that is an upper bound on the point's own compute time, but
    it is measured at the only place every backend shares.
    """

    repro_version: str          #: release that computed the result
    git_sha: str                #: checkout revision (``"unknown"`` if no git)
    spec: str                   #: sweep/spec name
    point_id: str               #: point identity within the spec
    func: str                   #: ``module:qualname`` function reference
    kwargs_digest: str          #: sha256 of the canonical kwargs serialization
    seed: Optional[int] = None  #: workload input seed, when the point has one
    backend: str = "serial"     #: executing backend's name
    worker: Optional[str] = None    #: worker label (distributed/service)
    host: str = "unknown"       #: coordinator hostname
    duration_s: Optional[float] = None  #: see class docstring
    created_at: str = ""        #: ISO-8601 UTC creation instant
    job_id: Optional[str] = None     #: service job, when run via ``repro serve``
    submitter: Optional[str] = None  #: service submitter identity
    migrated: bool = False      #: entry rescued from a legacy ``.repro-cache``

    @classmethod
    def collect(cls, *, spec: str, point_id: str, func: str,
                kwargs_digest: str, seed: Optional[int] = None,
                backend: str = "serial", worker: Optional[str] = None,
                duration_s: Optional[float] = None,
                job_id: Optional[str] = None,
                submitter: Optional[str] = None,
                migrated: bool = False) -> "Provenance":
        """Build a record, filling in the ambient fields (version, git
        sha, host, timestamp) from the running process."""
        from repro import __version__

        try:
            host = socket.gethostname()
        except OSError:
            host = "unknown"
        return cls(repro_version=__version__, git_sha=current_git_sha(),
                   spec=spec, point_id=point_id, func=func,
                   kwargs_digest=kwargs_digest, seed=seed, backend=backend,
                   worker=worker, host=host, duration_s=duration_s,
                   created_at=utc_now_iso(), job_id=job_id,
                   submitter=submitter, migrated=migrated)

    def to_json(self) -> Dict[str, object]:
        """A JSON-ready dict; ``None`` optionals are omitted."""
        payload: Dict[str, object] = {
            "repro_version": self.repro_version, "git_sha": self.git_sha,
            "spec": self.spec, "point_id": self.point_id, "func": self.func,
            "kwargs_digest": self.kwargs_digest, "backend": self.backend,
            "host": self.host, "created_at": self.created_at,
        }
        for name in ("seed", "worker", "duration_s", "job_id", "submitter"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.migrated:
            payload["migrated"] = True
        return payload

    @classmethod
    def from_json(cls, payload: object) -> "Provenance":
        """Inverse of :meth:`to_json`; raises ``ValueError`` on bad shapes."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"provenance must be a JSON object, got "
                f"{type(payload).__name__}")
        known = {field.name for field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"provenance has unknown fields: {sorted(unknown)}")
        for name in ("repro_version", "git_sha", "spec", "point_id", "func",
                     "kwargs_digest", "backend", "host", "created_at"):
            if not isinstance(payload.get(name), str):
                raise ValueError(f"provenance field {name!r} must be a string")
        seed = payload.get("seed")
        if seed is not None and (not isinstance(seed, int)
                                 or isinstance(seed, bool)):
            raise ValueError("provenance field 'seed' must be an integer")
        duration = payload.get("duration_s")
        if duration is not None and not isinstance(duration, (int, float)):
            raise ValueError("provenance field 'duration_s' must be a number")
        for name in ("worker", "job_id", "submitter"):
            value = payload.get(name)
            if value is not None and not isinstance(value, str):
                raise ValueError(
                    f"provenance field {name!r} must be a string")
        return cls(
            repro_version=payload["repro_version"],
            git_sha=payload["git_sha"], spec=payload["spec"],
            point_id=payload["point_id"], func=payload["func"],
            kwargs_digest=payload["kwargs_digest"], seed=seed,
            backend=payload["backend"], worker=payload.get("worker"),
            host=payload["host"],
            duration_s=float(duration) if duration is not None else None,
            created_at=payload["created_at"], job_id=payload.get("job_id"),
            submitter=payload.get("submitter"),
            migrated=bool(payload.get("migrated", False)))

    @property
    def age_days(self) -> Optional[float]:
        """Days since ``created_at``; ``None`` if the timestamp is absent
        or unparseable (legacy or hand-edited entries)."""
        if not self.created_at:
            return None
        try:
            created = datetime.fromisoformat(self.created_at)
        except ValueError:
            return None
        if created.tzinfo is None:
            created = created.replace(tzinfo=timezone.utc)
        delta = datetime.now(timezone.utc) - created
        return delta.total_seconds() / 86400.0
