"""Figure 8: sparse matrix multiplication speedup over the AMD CPU core.

Two panels: the left fixes the density and varies the matrix size; the right
fixes the size and varies the density.  The paper's observation is that
speedups exist until the ``mttop_malloc`` traffic (one CPU-serviced
allocation per result non-zero) becomes the bottleneck, which happens as the
matrices get denser — so speedup falls with density.  At simulator-tractable
sizes the absolute speedups are smaller than the paper's hardware-scale runs
(see EXPERIMENTS.md), but both trends are reproduced: speedup grows with
size at fixed density and falls as density rises at fixed size.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.harness.runner import SweepRunner

from repro.config import APUSystemConfig, CCSVMSystemConfig
from repro.experiments.report import full_sweep_enabled, render_table
from repro.harness.spec import PointResult, SweepPoint, SweepSpec, register
from repro.workloads import sparse_matmul
from repro.workloads.base import require_verified

DEFAULT_SIZES = (16, 32, 48)
FULL_SWEEP_SIZES = (16, 32, 48, 64, 96)
DEFAULT_DENSITIES = (0.02, 0.05, 0.10, 0.20)
FULL_SWEEP_DENSITIES = (0.01, 0.02, 0.05, 0.10, 0.20, 0.35)

#: Fixed density for the left panel and fixed size for the right panel.
LEFT_PANEL_DENSITY = 0.05
RIGHT_PANEL_SIZE = 32

SIZE_COLUMNS = ("size", "density", "cpu_ms", "ccsvm_xthreads_ms",
                "mttop_mallocs", "speedup_vs_cpu")
DENSITY_COLUMNS = ("density", "size", "cpu_ms", "ccsvm_xthreads_ms",
                   "mttop_mallocs", "speedup_vs_cpu")


def _point(size: int, density: float, seed: int,
           ccsvm_config: Optional[CCSVMSystemConfig],
           apu_config: Optional[APUSystemConfig]) -> PointResult:
    """Simulate one (size, density) cell on the CPU core and the CCSVM chip."""
    cpu = require_verified(sparse_matmul.run_cpu(size, density, seed=seed,
                                                 config=apu_config))
    ccsvm = require_verified(sparse_matmul.run_ccsvm(size, density, seed=seed,
                                                     config=ccsvm_config))
    row = {
        "size": size,
        "density": density,
        "cpu_ms": cpu.time_ms,
        "ccsvm_xthreads_ms": ccsvm.time_ms,
        "mttop_mallocs": ccsvm.extra.get("mttop_mallocs", 0),
        "speedup_vs_cpu": cpu.time_ps / ccsvm.time_ps,
    }
    return PointResult(rows=[row], stats=dict(ccsvm.counters))


def _size_points(sizes: Sequence[int], density: float, seed: int,
                 ccsvm_config: Optional[CCSVMSystemConfig],
                 apu_config: Optional[APUSystemConfig]) -> List[SweepPoint]:
    return [SweepPoint(spec="figure8", point_id=f"size={size},density={density}",
                       func=_point, group="by_size",
                       kwargs={"size": size, "density": density, "seed": seed,
                               "ccsvm_config": ccsvm_config,
                               "apu_config": apu_config})
            for size in sizes]


def _density_points(densities: Sequence[float], size: int, seed: int,
                    ccsvm_config: Optional[CCSVMSystemConfig],
                    apu_config: Optional[APUSystemConfig]) -> List[SweepPoint]:
    return [SweepPoint(spec="figure8", point_id=f"density={density},size={size}",
                       func=_point, group="by_density",
                       kwargs={"size": size, "density": density, "seed": seed,
                               "ccsvm_config": ccsvm_config,
                               "apu_config": apu_config})
            for density in densities]


def build_points(full: bool = False,
                 sizes: Optional[Sequence[int]] = None,
                 densities: Optional[Sequence[float]] = None,
                 ccsvm_config: Optional[CCSVMSystemConfig] = None,
                 apu_config: Optional[APUSystemConfig] = None,
                 seed: int = 23) -> List[SweepPoint]:
    """Expand both Figure 8 panels into one point per (size, density) cell."""
    if sizes is None:
        sizes = FULL_SWEEP_SIZES if full else DEFAULT_SIZES
    if densities is None:
        densities = FULL_SWEEP_DENSITIES if full else DEFAULT_DENSITIES
    return (_size_points(sizes, LEFT_PANEL_DENSITY, seed, ccsvm_config, apu_config)
            + _density_points(densities, RIGHT_PANEL_SIZE, seed,
                              ccsvm_config, apu_config))


def run_size_sweep(sizes: Optional[Sequence[int]] = None,
                   density: float = LEFT_PANEL_DENSITY,
                   ccsvm_config: Optional[CCSVMSystemConfig] = None,
                   apu_config: Optional[APUSystemConfig] = None,
                   seed: int = 23, runner: Optional["SweepRunner"] = None
                   ) -> List[Dict[str, object]]:
    """Left panel: fixed density, varying matrix size."""
    from repro.harness.runner import SweepRunner

    if sizes is None:
        sizes = FULL_SWEEP_SIZES if full_sweep_enabled() else DEFAULT_SIZES
    runner = runner if runner is not None else SweepRunner()
    points = _size_points(sizes, density, seed, ccsvm_config, apu_config)
    return runner.run_points(points, spec_name="figure8").result["by_size"]


def run_density_sweep(densities: Optional[Sequence[float]] = None,
                      size: int = RIGHT_PANEL_SIZE,
                      ccsvm_config: Optional[CCSVMSystemConfig] = None,
                      apu_config: Optional[APUSystemConfig] = None,
                      seed: int = 23, runner: Optional["SweepRunner"] = None
                      ) -> List[Dict[str, object]]:
    """Right panel: fixed matrix size, varying density."""
    from repro.harness.runner import SweepRunner

    if densities is None:
        densities = FULL_SWEEP_DENSITIES if full_sweep_enabled() else DEFAULT_DENSITIES
    runner = runner if runner is not None else SweepRunner()
    points = _density_points(densities, size, seed, ccsvm_config, apu_config)
    return runner.run_points(points, spec_name="figure8").result["by_density"]


def run(ccsvm_config: Optional[CCSVMSystemConfig] = None,
        apu_config: Optional[APUSystemConfig] = None,
        runner: Optional["SweepRunner"] = None
        ) -> Dict[str, List[Dict[str, object]]]:
    """Run both panels and return ``{"by_size": ..., "by_density": ...}``."""
    from repro.harness.runner import SweepRunner

    runner = runner if runner is not None else SweepRunner()
    return runner.run_spec(SPEC, full=full_sweep_enabled(),
                           ccsvm_config=ccsvm_config,
                           apu_config=apu_config).result


def render(panels: Dict[str, List[Dict[str, object]]]) -> str:
    """Format both Figure 8 panels."""
    left = render_table(panels["by_size"], SIZE_COLUMNS,
                        title="Figure 8 (left) — sparse MM speedup vs one AMD CPU "
                              f"core, density fixed at {LEFT_PANEL_DENSITY:.0%}")
    right = render_table(panels["by_density"], DENSITY_COLUMNS,
                         title="Figure 8 (right) — sparse MM speedup vs one AMD CPU "
                               f"core, size fixed at {RIGHT_PANEL_SIZE}")
    return left + "\n\n" + right


SPEC = register(SweepSpec(
    name="figure8",
    title="Sparse matrix multiply speedup (size and density sweeps)",
    build_points=build_points,
    render=render,
))
