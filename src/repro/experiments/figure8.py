"""Figure 8: sparse matrix multiplication speedup over the AMD CPU core.

Two panels: the left fixes the density and varies the matrix size; the right
fixes the size and varies the density.  The paper's observation is that
speedups exist until the ``mttop_malloc`` traffic (one CPU-serviced
allocation per result non-zero) becomes the bottleneck, which happens as the
matrices get denser — so speedup falls with density.  At simulator-tractable
sizes the absolute speedups are smaller than the paper's hardware-scale runs
(see EXPERIMENTS.md), but both trends are reproduced: speedup grows with
size at fixed density and falls as density rises at fixed size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import APUSystemConfig, CCSVMSystemConfig
from repro.experiments.report import full_sweep_enabled, render_table
from repro.workloads import sparse_matmul
from repro.workloads.base import require_verified

DEFAULT_SIZES = (16, 32, 48)
FULL_SWEEP_SIZES = (16, 32, 48, 64, 96)
DEFAULT_DENSITIES = (0.02, 0.05, 0.10, 0.20)
FULL_SWEEP_DENSITIES = (0.01, 0.02, 0.05, 0.10, 0.20, 0.35)

#: Fixed density for the left panel and fixed size for the right panel.
LEFT_PANEL_DENSITY = 0.05
RIGHT_PANEL_SIZE = 32

SIZE_COLUMNS = ("size", "density", "cpu_ms", "ccsvm_xthreads_ms",
                "mttop_mallocs", "speedup_vs_cpu")
DENSITY_COLUMNS = ("density", "size", "cpu_ms", "ccsvm_xthreads_ms",
                   "mttop_mallocs", "speedup_vs_cpu")


def _point(size: int, density: float, seed: int,
           ccsvm_config: Optional[CCSVMSystemConfig],
           apu_config: Optional[APUSystemConfig]) -> Dict[str, object]:
    cpu = require_verified(sparse_matmul.run_cpu(size, density, seed=seed,
                                                 config=apu_config))
    ccsvm = require_verified(sparse_matmul.run_ccsvm(size, density, seed=seed,
                                                     config=ccsvm_config))
    return {
        "size": size,
        "density": density,
        "cpu_ms": cpu.time_ms,
        "ccsvm_xthreads_ms": ccsvm.time_ms,
        "mttop_mallocs": ccsvm.extra.get("mttop_mallocs", 0),
        "speedup_vs_cpu": cpu.time_ps / ccsvm.time_ps,
    }


def run_size_sweep(sizes: Optional[Sequence[int]] = None,
                   density: float = LEFT_PANEL_DENSITY,
                   ccsvm_config: Optional[CCSVMSystemConfig] = None,
                   apu_config: Optional[APUSystemConfig] = None,
                   seed: int = 23) -> List[Dict[str, object]]:
    """Left panel: fixed density, varying matrix size."""
    if sizes is None:
        sizes = FULL_SWEEP_SIZES if full_sweep_enabled() else DEFAULT_SIZES
    return [_point(size, density, seed, ccsvm_config, apu_config) for size in sizes]


def run_density_sweep(densities: Optional[Sequence[float]] = None,
                      size: int = RIGHT_PANEL_SIZE,
                      ccsvm_config: Optional[CCSVMSystemConfig] = None,
                      apu_config: Optional[APUSystemConfig] = None,
                      seed: int = 23) -> List[Dict[str, object]]:
    """Right panel: fixed matrix size, varying density."""
    if densities is None:
        densities = FULL_SWEEP_DENSITIES if full_sweep_enabled() else DEFAULT_DENSITIES
    return [_point(size, density, seed, ccsvm_config, apu_config)
            for density in densities]


def run(ccsvm_config: Optional[CCSVMSystemConfig] = None,
        apu_config: Optional[APUSystemConfig] = None) -> Dict[str, List[Dict[str, object]]]:
    """Run both panels and return ``{"by_size": ..., "by_density": ...}``."""
    return {
        "by_size": run_size_sweep(ccsvm_config=ccsvm_config, apu_config=apu_config),
        "by_density": run_density_sweep(ccsvm_config=ccsvm_config,
                                        apu_config=apu_config),
    }


def render(panels: Dict[str, List[Dict[str, object]]]) -> str:
    """Format both Figure 8 panels."""
    left = render_table(panels["by_size"], SIZE_COLUMNS,
                        title="Figure 8 (left) — sparse MM speedup vs one AMD CPU "
                              f"core, density fixed at {LEFT_PANEL_DENSITY:.0%}")
    right = render_table(panels["by_density"], DENSITY_COLUMNS,
                         title="Figure 8 (right) — sparse MM speedup vs one AMD CPU "
                               f"core, size fixed at {RIGHT_PANEL_SIZE}")
    return left + "\n\n" + right
