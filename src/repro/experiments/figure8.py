"""Figure 8: sparse matrix multiplication speedup over the AMD CPU core.

Two panels: the left fixes the density and varies the matrix size; the right
fixes the size and varies the density.  The paper's observation is that
speedups exist until the ``mttop_malloc`` traffic (one CPU-serviced
allocation per result non-zero) becomes the bottleneck, which happens as the
matrices get denser — so speedup falls with density.  At simulator-tractable
sizes the absolute speedups are smaller than the paper's hardware-scale runs
(see EXPERIMENTS.md), but both trends are reproduced: speedup grows with
size at fixed density and falls as density rises at fixed size.

Each panel is its own comparison :class:`~repro.api.Scenario` (same
workload, same derive, different grid and output group); registering both
under the one ``figure8`` sweep keeps the two-panel rendering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.harness.runner import SweepRunner
    from repro.workloads.base import WorkloadResult

from repro.api import Scenario
from repro.config import APUSystemConfig, CCSVMSystemConfig
from repro.experiments.report import full_sweep_enabled, render_table
from repro.harness.spec import SweepPoint, SweepSpec, register

DEFAULT_SIZES = (16, 32, 48)
FULL_SWEEP_SIZES = (16, 32, 48, 64, 96)
DEFAULT_DENSITIES = (0.02, 0.05, 0.10, 0.20)
FULL_SWEEP_DENSITIES = (0.01, 0.02, 0.05, 0.10, 0.20, 0.35)

#: Fixed density for the left panel and fixed size for the right panel.
LEFT_PANEL_DENSITY = 0.05
RIGHT_PANEL_SIZE = 32

SIZE_COLUMNS = ("size", "density", "cpu_ms", "ccsvm_xthreads_ms",
                "mttop_mallocs", "speedup_vs_cpu")
DENSITY_COLUMNS = ("density", "size", "cpu_ms", "ccsvm_xthreads_ms",
                   "mttop_mallocs", "speedup_vs_cpu")


def derive_row(results: "Dict[str, WorkloadResult]",
               params: Dict[str, object]) -> Dict[str, object]:
    """Fold one (size, density) cell's two system runs into its row."""
    cpu, ccsvm = results["cpu"], results["ccsvm"]
    return {
        "size": params["size"],
        "density": params["density"],
        "cpu_ms": cpu.time_ms,
        "ccsvm_xthreads_ms": ccsvm.time_ms,
        "mttop_mallocs": ccsvm.extra.get("mttop_mallocs", 0),
        "speedup_vs_cpu": cpu.time_ps / ccsvm.time_ps,
    }


SIZE_SCENARIO = Scenario(
    name="figure8",
    workload="sparse_matmul",
    systems=("cpu", "ccsvm"),
    grid={"size": DEFAULT_SIZES, "density": (LEFT_PANEL_DENSITY,)},
    full_grid={"size": FULL_SWEEP_SIZES},
    seed=23,
    derive="repro.experiments.figure8:derive_row",
    group="by_size",
)

DENSITY_SCENARIO = Scenario(
    name="figure8",
    workload="sparse_matmul",
    systems=("cpu", "ccsvm"),
    grid={"density": DEFAULT_DENSITIES, "size": (RIGHT_PANEL_SIZE,)},
    full_grid={"density": FULL_SWEEP_DENSITIES},
    seed=23,
    derive="repro.experiments.figure8:derive_row",
    group="by_density",
)


def build_points(full: bool = False,
                 sizes: Optional[Sequence[int]] = None,
                 densities: Optional[Sequence[float]] = None,
                 ccsvm_config: Optional[CCSVMSystemConfig] = None,
                 apu_config: Optional[APUSystemConfig] = None,
                 seed: int = 23) -> List[SweepPoint]:
    """Expand both Figure 8 panels into one point per (size, density) cell."""
    configs = {"ccsvm": ccsvm_config, "cpu": apu_config}
    return (SIZE_SCENARIO.points(
                full=full, seed=seed, configs=configs,
                grid=None if sizes is None else {"size": tuple(sizes)})
            + DENSITY_SCENARIO.points(
                full=full, seed=seed, configs=configs,
                grid=None if densities is None
                else {"density": tuple(densities)}))


def run_size_sweep(sizes: Optional[Sequence[int]] = None,
                   density: float = LEFT_PANEL_DENSITY,
                   ccsvm_config: Optional[CCSVMSystemConfig] = None,
                   apu_config: Optional[APUSystemConfig] = None,
                   seed: int = 23, runner: Optional["SweepRunner"] = None
                   ) -> List[Dict[str, object]]:
    """Left panel: fixed density, varying matrix size."""
    from repro.harness.runner import SweepRunner

    if sizes is None:
        sizes = FULL_SWEEP_SIZES if full_sweep_enabled() else DEFAULT_SIZES
    runner = runner if runner is not None else SweepRunner()
    points = SIZE_SCENARIO.points(
        seed=seed, grid={"size": tuple(sizes), "density": (density,)},
        configs={"ccsvm": ccsvm_config, "cpu": apu_config})
    return runner.run_points(points, spec_name="figure8").result["by_size"]


def run_density_sweep(densities: Optional[Sequence[float]] = None,
                      size: int = RIGHT_PANEL_SIZE,
                      ccsvm_config: Optional[CCSVMSystemConfig] = None,
                      apu_config: Optional[APUSystemConfig] = None,
                      seed: int = 23, runner: Optional["SweepRunner"] = None
                      ) -> List[Dict[str, object]]:
    """Right panel: fixed matrix size, varying density."""
    from repro.harness.runner import SweepRunner

    if densities is None:
        densities = FULL_SWEEP_DENSITIES if full_sweep_enabled() else DEFAULT_DENSITIES
    runner = runner if runner is not None else SweepRunner()
    points = DENSITY_SCENARIO.points(
        seed=seed, grid={"density": tuple(densities), "size": (size,)},
        configs={"ccsvm": ccsvm_config, "cpu": apu_config})
    return runner.run_points(points, spec_name="figure8").result["by_density"]


def run(ccsvm_config: Optional[CCSVMSystemConfig] = None,
        apu_config: Optional[APUSystemConfig] = None,
        runner: Optional["SweepRunner"] = None
        ) -> Dict[str, List[Dict[str, object]]]:
    """Run both panels and return ``{"by_size": ..., "by_density": ...}``."""
    from repro.harness.runner import SweepRunner

    runner = runner if runner is not None else SweepRunner()
    return runner.run_spec(SPEC, full=full_sweep_enabled(),
                           ccsvm_config=ccsvm_config,
                           apu_config=apu_config).result


def render(panels: Dict[str, List[Dict[str, object]]]) -> str:
    """Format both Figure 8 panels."""
    left = render_table(panels["by_size"], SIZE_COLUMNS,
                        title="Figure 8 (left) — sparse MM speedup vs one AMD CPU "
                              f"core, density fixed at {LEFT_PANEL_DENSITY:.0%}")
    right = render_table(panels["by_density"], DENSITY_COLUMNS,
                         title="Figure 8 (right) — sparse MM speedup vs one AMD CPU "
                               f"core, size fixed at {RIGHT_PANEL_SIZE}")
    return left + "\n\n" + right


SPEC = register(SweepSpec(
    name="figure8",
    title="Sparse matrix multiply speedup (size and density sweeps)",
    build_points=build_points,
    render=render,
))
