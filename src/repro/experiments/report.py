"""Rendering helpers for experiment results."""

from __future__ import annotations

import csv
import io
import os
from typing import Dict, List, Optional, Sequence


def full_sweep_enabled() -> bool:
    """True when the environment asks for the larger (slower) sweeps."""
    return os.environ.get("REPRO_FULL_SWEEP", "").strip() not in ("", "0", "false")


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def render_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render rows of dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(header[i]), *(len(line[i]) for line in body))
              for i in range(len(header))]

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write("  ".join(header[i].ljust(widths[i]) for i in range(len(header))) + "\n")
    out.write("  ".join("-" * widths[i] for i in range(len(header))) + "\n")
    for line in body:
        out.write("  ".join(line[i].ljust(widths[i]) for i in range(len(header))) + "\n")
    return out.getvalue().rstrip("\n")


def rows_to_csv(rows: Sequence[Dict[str, object]],
                columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text (useful for plotting outside the harness).

    Values containing commas, quotes or newlines are quoted/escaped per RFC
    4180, so string cells (e.g. Table 2's parameter descriptions) survive a
    round-trip through any CSV reader.
    """
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow([str(column) for column in columns])
    for row in rows:
        writer.writerow([_format_value(row.get(column, "")) for column in columns])
    return out.getvalue().rstrip("\n")
