"""Experiment harness: one module per figure of the paper's evaluation.

Each ``figureN`` module exposes

* ``run(...) -> list[dict]`` — execute the sweep and return one row per
  data point (all systems' times / counters plus the derived ratios the
  paper plots), and
* ``render(rows) -> str`` — format the rows as the table printed by the
  benchmark harness and the examples.

Default sweep parameters are sized for a laptop-class machine; pass larger
sizes (or set the environment variable ``REPRO_FULL_SWEEP=1``) for the
larger sweeps recorded in EXPERIMENTS.md.
"""

from repro.experiments.report import render_table, rows_to_csv

__all__ = ["render_table", "rows_to_csv"]
