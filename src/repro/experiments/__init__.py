"""Experiment modules: one per figure of the paper's evaluation.

Each ``figureN`` module (plus ``table2`` and ``ablations``) exposes

* ``run(...) -> list[dict]`` — execute the sweep through the unified
  :mod:`repro.harness` sweep runner and return one row per data point (all
  systems' times / counters plus the derived ratios the paper plots),
* ``render(rows) -> str`` — format the rows as the table printed by the
  benchmark harness and the examples, and
* ``build_points(...) -> list[SweepPoint]`` + a registered ``SPEC`` — the
  declarative sweep description the harness executes (run it from the shell
  with ``python -m repro run figureN [--full] [--jobs N]``).

Default sweep parameters are sized for a laptop-class machine; pass larger
sizes (or set the environment variable ``REPRO_FULL_SWEEP=1``, the CLI's
``--full``) for the larger sweeps recorded in EXPERIMENTS.md.
"""

from repro.experiments.report import render_table, rows_to_csv

__all__ = ["render_table", "rows_to_csv"]
