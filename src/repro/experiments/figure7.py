"""Figure 7: Barnes-Hut runtime — CCSVM/xthreads vs one CPU core vs pthreads.

The paper compares CCSVM/xthreads Barnes-Hut against a single AMD CPU core
and against the 4-thread pthreads version on the APU's CPU cores (there is
no OpenCL version).  The point being demonstrated is that pointer-chasing,
recursive code with frequent sequential/parallel phase toggling becomes
profitable to offload once CPU-MTTOP communication is cheap.

One comparison :class:`~repro.api.Scenario`: ``barnes_hut`` on ``cpu`` /
``pthreads`` / ``ccsvm`` across a body-count grid with a fixed timestep
count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.harness.runner import SweepRunner
    from repro.workloads.base import WorkloadResult

from repro.api import Scenario
from repro.config import APUSystemConfig, CCSVMSystemConfig
from repro.experiments.report import full_sweep_enabled, render_table
from repro.harness.spec import SweepPoint, SweepSpec, register

DEFAULT_BODY_COUNTS = (16, 32, 64)
FULL_SWEEP_BODY_COUNTS = (16, 32, 64, 128, 256)

COLUMNS = (
    "bodies",
    "cpu_ms",
    "pthreads_ms",
    "ccsvm_xthreads_ms",
    "speedup_vs_cpu",
    "speedup_vs_pthreads",
)


def derive_row(results: "Dict[str, WorkloadResult]",
               params: Dict[str, object]) -> Dict[str, object]:
    """Fold one body count's three system runs into its Figure 7 row."""
    cpu, pthreads, ccsvm = (results["cpu"], results["pthreads"],
                            results["ccsvm"])
    return {
        "bodies": params["bodies"],
        "cpu_ms": cpu.time_ms,
        "pthreads_ms": pthreads.time_ms,
        "ccsvm_xthreads_ms": ccsvm.time_ms,
        "speedup_vs_cpu": cpu.time_ps / ccsvm.time_ps,
        "speedup_vs_pthreads": pthreads.time_ps / ccsvm.time_ps,
    }


SCENARIO = Scenario(
    name="figure7",
    workload="barnes_hut",
    systems=("cpu", "pthreads", "ccsvm"),
    grid={"bodies": DEFAULT_BODY_COUNTS},
    full_grid={"bodies": FULL_SWEEP_BODY_COUNTS},
    params={"timesteps": 2},
    seed=5,
    derive="repro.experiments.figure7:derive_row",
)


def build_points(full: bool = False,
                 body_counts: Optional[Sequence[int]] = None,
                 timesteps: int = 2,
                 ccsvm_config: Optional[CCSVMSystemConfig] = None,
                 apu_config: Optional[APUSystemConfig] = None,
                 seed: int = 5) -> List[SweepPoint]:
    """Expand the Figure 7 sweep into one point per body count."""
    return SCENARIO.points(
        full=full, seed=seed, params={"timesteps": timesteps},
        grid=None if body_counts is None else {"bodies": tuple(body_counts)},
        configs={"ccsvm": ccsvm_config, "cpu": apu_config,
                 "pthreads": apu_config})


def run(body_counts: Optional[Sequence[int]] = None, timesteps: int = 2,
        ccsvm_config: Optional[CCSVMSystemConfig] = None,
        apu_config: Optional[APUSystemConfig] = None,
        seed: int = 5, runner: Optional["SweepRunner"] = None
        ) -> List[Dict[str, object]]:
    """Run the Figure 7 sweep and return one row per body count."""
    from repro.harness.runner import SweepRunner

    runner = runner if runner is not None else SweepRunner()
    return runner.run_spec(SPEC, full=full_sweep_enabled(),
                           body_counts=body_counts, timesteps=timesteps,
                           ccsvm_config=ccsvm_config, apu_config=apu_config,
                           seed=seed).result


def render(rows: Sequence[Dict[str, object]]) -> str:
    """Format the Figure 7 rows."""
    return render_table(rows, COLUMNS,
                        title="Figure 7 — Barnes-Hut n-body runtime "
                              "(speedups > 1 favour CCSVM/xthreads)")


SPEC = register(SweepSpec(
    name="figure7",
    title="Barnes-Hut n-body runtime vs one CPU core and vs pthreads",
    build_points=build_points,
    render=render,
))
