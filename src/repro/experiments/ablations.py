"""Ablation grid for design choices the paper discusses.

Not figures from the paper, but quantified design points its text calls out:

* **Launch overhead vs task size** (Section 5.2's intuition): the cost of a
  task launch on the CCSVM chip vs on the APU's OpenCL runtime.
* **TLB shootdown policy** (Section 3.2.1): the conservative flush-everything
  policy the paper adopts vs selective invalidation.
* **Atomic placement** (Section 3.2.4): atomics performed at the L1 after an
  exclusive request vs an idealised L2-resident atomic.
* **GPU buffer caching** (Section 6.1): the APU GPU's uncached zero-copy
  buffer path vs a hypothetical cached path.

Each grid cell is one :class:`~repro.harness.spec.SweepPoint`; rows share the
schema ``{"ablation", "variant", "metric", "value"}``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.harness.runner import SweepRunner

from repro.baseline.apu import AMDAPU
from repro.config import small_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.core.xthreads.api import CreateMThread, WaitCond, mttop_signal
from repro.cores.isa import Load, Malloc, Store, word_addr
from repro.experiments.report import render_table
from repro.harness.spec import PointResult, SweepPoint, SweepSpec, register
from repro.sim.stats import StatsRegistry
from repro.vm.shootdown import ShootdownPolicy, TLBShootdownController
from repro.vm.tlb import TLB
from repro.workloads.vector_add import vector_add_device_kernel

COLUMNS = ("ablation", "variant", "metric", "value")

ABLATIONS = ("launch_overhead", "tlb_shootdown", "atomics", "gpu_buffer_caching")


# --------------------------------------------------------------------------- #
# Launch overhead: empty task launch+sync on CCSVM vs an OpenCL launch
# --------------------------------------------------------------------------- #
def _noop_kernel(tid, args):
    done = args
    yield from mttop_signal(done, tid)


def _launch_only_host(threads):
    def host():
        done = yield Malloc(threads * 8)
        for t in range(threads):
            yield Store(word_addr(done, t), 0)
        yield CreateMThread(_noop_kernel, done, 0, threads - 1)
        yield WaitCond(done, 0, threads - 1)
    return host


def ccsvm_launch_point(threads: int) -> PointResult:
    """Launch+sync of an empty ``threads``-wide task on the CCSVM chip (ns)."""
    chip = CCSVMChip(small_ccsvm_system(mttop_cores=4, thread_contexts=64))
    chip.create_process("launch_ablation")
    result = chip.run(_launch_only_host(threads)())
    row = {"ablation": "launch_overhead", "variant": f"ccsvm_{threads}_threads",
           "metric": "launch_sync_ns", "value": result.time_ns}
    return PointResult(rows=[row], stats=result.stats.to_dict())


def opencl_launch_point() -> PointResult:
    """An OpenCL no-op kernel launch on the APU, compile/init excluded (ns)."""
    apu = AMDAPU()
    session = apu.opencl_session()
    session.build_program(["noop"])
    buffer = session.create_buffer(64 * 8)
    kernel = session.create_kernel("noop", vector_add_device_kernel)
    session.enqueue_nd_range(kernel, 1, args=(buffer.address, buffer.address,
                                              buffer.address))
    row = {"ablation": "launch_overhead", "variant": "opencl_nosetup",
           "metric": "launch_sync_ns",
           "value": session.elapsed_without_setup_ps / 1_000.0}
    return PointResult(rows=[row])


# --------------------------------------------------------------------------- #
# TLB shootdown policy: conservative flush vs selective invalidation
# --------------------------------------------------------------------------- #
def shootdown_point(policy: str) -> PointResult:
    """Entries dropped by one single-page shootdown under ``policy``."""
    stats = StatsRegistry()
    controller = TLBShootdownController(stats=stats,
                                        policy=ShootdownPolicy(policy))
    cpu_tlbs = [TLB(name=f"cpu{i}", stats=stats) for i in range(4)]
    mttop_tlbs = [TLB(name=f"mttop{i}", stats=stats) for i in range(10)]
    for tlb in cpu_tlbs:
        controller.register_cpu_tlb(tlb)
    for tlb in mttop_tlbs:
        controller.register_mttop_tlb(tlb)
    # Warm every TLB with 64 translations, then shoot down one page.
    for tlb in cpu_tlbs + mttop_tlbs:
        for page in range(64):
            tlb.insert(page, page * 4096, True)
    result = controller.shootdown([5 * 4096], initiator_tlb=cpu_tlbs[0])
    row = {"ablation": "tlb_shootdown", "variant": policy,
           "metric": "entries_dropped", "value": result.entries_dropped}
    return PointResult(rows=[row], stats=stats.to_dict())


# --------------------------------------------------------------------------- #
# Atomic placement: contended counter with atomics at the L1 vs 'at the L2'
# --------------------------------------------------------------------------- #
def atomics_point(at_l1: bool) -> PointResult:
    """Time a counter-increment kernel with atomics at the L1 vs 'at the L2'.

    The at-L2 variant is idealised by charging only the directory/L2 access
    (no exclusive ownership transfer), which is what performing the atomic at
    the shared cache would avoid.
    """
    config = small_ccsvm_system(mttop_cores=2, thread_contexts=32)
    chip = CCSVMChip(config)
    chip.create_process("atomic_ablation")
    counter = chip.malloc(8)
    chip.write_word(counter, 0)
    done = chip.malloc(64 * 8)
    for t in range(64):
        chip.write_word(word_addr(done, t), 0)

    if at_l1:
        def kernel(tid, args):
            from repro.cores.isa import AtomicAdd
            for _ in range(4):
                yield AtomicAdd(counter, 1)
            yield from mttop_signal(done, tid)
    else:
        def kernel(tid, args):
            for _ in range(4):
                value = yield Load(counter)
                yield Store(counter, value + 1)
            yield from mttop_signal(done, tid)

    def host():
        yield CreateMThread(kernel, None, 0, 63)
        yield WaitCond(done, 0, 63)

    result = chip.run(host())
    row = {"ablation": "atomics",
           "variant": "l1_atomic" if at_l1 else "l2_idealized",
           "metric": "time_ps", "value": result.time_ps}
    return PointResult(rows=[row], stats=result.stats.to_dict())


# --------------------------------------------------------------------------- #
# GPU buffer caching: the uncached zero-copy path vs a hypothetical cached one
# --------------------------------------------------------------------------- #
def gpu_caching_point(cached: bool) -> PointResult:
    """DRAM accesses of a 16x16 matmul kernel with/without GPU buffer caching."""
    from repro.workloads.generators import dense_matrix
    from repro.workloads.matmul import matmul_device_kernel

    apu = AMDAPU()
    apu.gpu.cache_buffer_accesses = cached
    size = 16
    a = apu.allocate(size * size * 8)
    b = apu.allocate(size * size * 8)
    c = apu.allocate(size * size * 8)
    apu.write_array(a, dense_matrix(size, 1))
    apu.write_array(b, dense_matrix(size, 2))
    before = apu.dram_accesses
    apu.gpu.execute_kernel(matmul_device_kernel,
                           (a, b, c, size, size * size), range(size * size))
    row = {"ablation": "gpu_buffer_caching",
           "variant": "cached" if cached else "uncached",
           "metric": "dram_accesses", "value": apu.dram_accesses - before}
    return PointResult(rows=[row])


# --------------------------------------------------------------------------- #
# The grid
# --------------------------------------------------------------------------- #
def build_points(full: bool = False, launch_threads: int = 32,
                 ablations: Optional[Sequence[str]] = None) -> List[SweepPoint]:
    """Expand the ablation grid (optionally restricted to some ablations)."""
    thread_counts = tuple(dict.fromkeys((8, launch_threads, 64))) if full \
        else (launch_threads,)
    here = "repro.experiments.ablations"
    grid: List[SweepPoint] = []
    grid.extend(SweepPoint(spec="ablations", point_id=f"launch_ccsvm_{threads}",
                           func=f"{here}:ccsvm_launch_point",
                           kwargs={"threads": threads})
                for threads in thread_counts)
    grid.append(SweepPoint(spec="ablations", point_id="launch_opencl",
                           func=f"{here}:opencl_launch_point", kwargs={}))
    grid.extend(SweepPoint(spec="ablations", point_id=f"shootdown_{policy.value}",
                           func=f"{here}:shootdown_point",
                           kwargs={"policy": policy.value})
                for policy in ShootdownPolicy)
    grid.extend(SweepPoint(spec="ablations", point_id=f"atomics_at_l1={at_l1}",
                           func=f"{here}:atomics_point", kwargs={"at_l1": at_l1})
                for at_l1 in (True, False))
    grid.extend(SweepPoint(spec="ablations", point_id=f"gpu_cached={cached}",
                           func=f"{here}:gpu_caching_point",
                           kwargs={"cached": cached})
                for cached in (False, True))
    if ablations is not None:
        wanted = set(ablations)
        unknown = wanted - set(ABLATIONS)
        if unknown:
            raise ValueError(f"unknown ablations: {sorted(unknown)}")
        grid = [point for point in grid if _point_ablation(point) in wanted]
    return grid


def _point_ablation(point: SweepPoint) -> str:
    prefixes = {"launch_": "launch_overhead", "shootdown_": "tlb_shootdown",
                "atomics_": "atomics", "gpu_": "gpu_buffer_caching"}
    for prefix, name in prefixes.items():
        if point.point_id.startswith(prefix):
            return name
    raise ValueError(f"unknown ablation point {point.point_id!r}")


def run(ablations: Optional[Sequence[str]] = None,
        runner: Optional["SweepRunner"] = None,
        launch_threads: int = 32) -> List[Dict[str, object]]:
    """Run the ablation grid (or a named subset) and return its rows."""
    from repro.experiments.report import full_sweep_enabled
    from repro.harness.runner import SweepRunner

    runner = runner if runner is not None else SweepRunner()
    return runner.run_spec(SPEC, full=full_sweep_enabled(), ablations=ablations,
                           launch_threads=launch_threads).result


def values(rows: Sequence[Dict[str, object]], ablation: str) -> Dict[str, object]:
    """Map ``variant -> value`` for one ablation's rows."""
    return {row["variant"]: row["value"] for row in rows
            if row["ablation"] == ablation}


def render(rows: Sequence[Dict[str, object]]) -> str:
    """Format the ablation grid rows."""
    return render_table(rows, COLUMNS,
                        title="Ablations — design points discussed in the paper")


SPEC = register(SweepSpec(
    name="ablations",
    title="Design-choice ablation grid (launch, shootdown, atomics, caching)",
    build_points=build_points,
    render=render,
))
