"""Figure 9: off-chip DRAM accesses for dense matrix multiply.

The paper reads the APU's performance counters and the simulator's DRAM
counters for the matrix-multiply runs of Figure 5, and shows that the APU —
whose CPU↔GPU communication necessarily goes through off-chip memory —
performs orders of magnitude more DRAM accesses than the CCSVM chip, whose
communication stays on chip.  The AMD CPU core's accesses also grow quickly
once the working set outgrows its caches.  The ratio between the APU and
CCSVM stays roughly constant across sizes.

The same comparison :class:`~repro.api.Scenario` shape as Figure 5, with a
derive function reading the DRAM counters instead of the runtimes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.harness.runner import SweepRunner
    from repro.workloads.base import WorkloadResult

from repro.api import Scenario
from repro.config import APUSystemConfig, CCSVMSystemConfig
from repro.experiments.report import full_sweep_enabled, render_table
from repro.harness.spec import SweepPoint, SweepSpec, register

DEFAULT_SIZES = (8, 12, 16, 24, 32)
FULL_SWEEP_SIZES = (8, 12, 16, 24, 32, 48, 64)

COLUMNS = (
    "size",
    "cpu_dram_accesses",
    "apu_opencl_dram_accesses",
    "ccsvm_xthreads_dram_accesses",
    "apu_over_ccsvm",
)


def derive_row(results: "Dict[str, WorkloadResult]",
               params: Dict[str, object]) -> Dict[str, object]:
    """Fold one size's three system runs into its Figure 9 row."""
    cpu, apu, ccsvm = results["cpu"], results["apu"], results["ccsvm"]
    ratio = (apu.dram_accesses / ccsvm.dram_accesses
             if ccsvm.dram_accesses else float("inf"))
    return {
        "size": params["size"],
        "cpu_dram_accesses": cpu.dram_accesses,
        "apu_opencl_dram_accesses": apu.dram_accesses,
        "ccsvm_xthreads_dram_accesses": ccsvm.dram_accesses,
        "apu_over_ccsvm": ratio,
    }


SCENARIO = Scenario(
    name="figure9",
    workload="matmul",
    systems=("cpu", "apu", "ccsvm"),
    grid={"size": DEFAULT_SIZES},
    full_grid={"size": FULL_SWEEP_SIZES},
    seed=7,
    derive="repro.experiments.figure9:derive_row",
)


def build_points(full: bool = False, sizes: Optional[Sequence[int]] = None,
                 ccsvm_config: Optional[CCSVMSystemConfig] = None,
                 apu_config: Optional[APUSystemConfig] = None,
                 seed: int = 7) -> List[SweepPoint]:
    """Expand the Figure 9 sweep into one point per matrix size."""
    return SCENARIO.points(
        full=full, seed=seed,
        grid=None if sizes is None else {"size": tuple(sizes)},
        configs={"ccsvm": ccsvm_config, "apu": apu_config, "cpu": apu_config})


def run(sizes: Optional[Sequence[int]] = None,
        ccsvm_config: Optional[CCSVMSystemConfig] = None,
        apu_config: Optional[APUSystemConfig] = None,
        seed: int = 7, runner: Optional["SweepRunner"] = None
        ) -> List[Dict[str, object]]:
    """Run the Figure 9 sweep and return one row per matrix size."""
    from repro.harness.runner import SweepRunner

    runner = runner if runner is not None else SweepRunner()
    return runner.run_spec(SPEC, full=full_sweep_enabled(), sizes=sizes,
                           ccsvm_config=ccsvm_config, apu_config=apu_config,
                           seed=seed).result


def render(rows: Sequence[Dict[str, object]]) -> str:
    """Format the Figure 9 rows."""
    return render_table(rows, COLUMNS,
                        title="Figure 9 — off-chip DRAM accesses for dense matrix "
                              "multiply (lower is better)")


SPEC = register(SweepSpec(
    name="figure9",
    title="Off-chip DRAM accesses for dense matrix multiply",
    build_points=build_points,
    render=render,
))
