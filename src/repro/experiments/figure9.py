"""Figure 9: off-chip DRAM accesses for dense matrix multiply.

The paper reads the APU's performance counters and the simulator's DRAM
counters for the matrix-multiply runs of Figure 5, and shows that the APU —
whose CPU↔GPU communication necessarily goes through off-chip memory —
performs orders of magnitude more DRAM accesses than the CCSVM chip, whose
communication stays on chip.  The AMD CPU core's accesses also grow quickly
once the working set outgrows its caches.  The ratio between the APU and
CCSVM stays roughly constant across sizes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.harness.runner import SweepRunner

from repro.config import APUSystemConfig, CCSVMSystemConfig
from repro.experiments.report import full_sweep_enabled, render_table
from repro.harness.spec import PointResult, SweepPoint, SweepSpec, register
from repro.workloads import matmul
from repro.workloads.base import require_verified

DEFAULT_SIZES = (8, 12, 16, 24, 32)
FULL_SWEEP_SIZES = (8, 12, 16, 24, 32, 48, 64)

COLUMNS = (
    "size",
    "cpu_dram_accesses",
    "apu_opencl_dram_accesses",
    "ccsvm_xthreads_dram_accesses",
    "apu_over_ccsvm",
)


def _point(size: int, seed: int,
           ccsvm_config: Optional[CCSVMSystemConfig],
           apu_config: Optional[APUSystemConfig]) -> PointResult:
    """Simulate all three systems at one matrix size and count DRAM traffic."""
    cpu = require_verified(matmul.run_cpu(size, seed=seed, config=apu_config))
    apu = require_verified(matmul.run_opencl(size, seed=seed, config=apu_config))
    ccsvm = require_verified(matmul.run_ccsvm(size, seed=seed,
                                              config=ccsvm_config))
    ratio = (apu.dram_accesses / ccsvm.dram_accesses
             if ccsvm.dram_accesses else float("inf"))
    row = {
        "size": size,
        "cpu_dram_accesses": cpu.dram_accesses,
        "apu_opencl_dram_accesses": apu.dram_accesses,
        "ccsvm_xthreads_dram_accesses": ccsvm.dram_accesses,
        "apu_over_ccsvm": ratio,
    }
    return PointResult(rows=[row], stats=dict(ccsvm.counters))


def build_points(full: bool = False, sizes: Optional[Sequence[int]] = None,
                 ccsvm_config: Optional[CCSVMSystemConfig] = None,
                 apu_config: Optional[APUSystemConfig] = None,
                 seed: int = 7) -> List[SweepPoint]:
    """Expand the Figure 9 sweep into one point per matrix size."""
    if sizes is None:
        sizes = FULL_SWEEP_SIZES if full else DEFAULT_SIZES
    return [SweepPoint(spec="figure9", point_id=f"size={size}", func=_point,
                       kwargs={"size": size, "seed": seed,
                               "ccsvm_config": ccsvm_config,
                               "apu_config": apu_config})
            for size in sizes]


def run(sizes: Optional[Sequence[int]] = None,
        ccsvm_config: Optional[CCSVMSystemConfig] = None,
        apu_config: Optional[APUSystemConfig] = None,
        seed: int = 7, runner: Optional["SweepRunner"] = None
        ) -> List[Dict[str, object]]:
    """Run the Figure 9 sweep and return one row per matrix size."""
    from repro.harness.runner import SweepRunner

    runner = runner if runner is not None else SweepRunner()
    return runner.run_spec(SPEC, full=full_sweep_enabled(), sizes=sizes,
                           ccsvm_config=ccsvm_config, apu_config=apu_config,
                           seed=seed).result


def render(rows: Sequence[Dict[str, object]]) -> str:
    """Format the Figure 9 rows."""
    return render_table(rows, COLUMNS,
                        title="Figure 9 — off-chip DRAM accesses for dense matrix "
                              "multiply (lower is better)")


SPEC = register(SweepSpec(
    name="figure9",
    title="Off-chip DRAM accesses for dense matrix multiply",
    build_points=build_points,
    render=render,
))
