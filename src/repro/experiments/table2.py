"""Table 2: the two system configurations under comparison.

Not an experiment as such, but regenerating the table keeps the presets
honest and gives the examples something compact to print.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.harness.runner import SweepRunner

from repro.config import (
    APUSystemConfig,
    CCSVMSystemConfig,
    amd_apu_system,
    ccsvm_system,
)
from repro.experiments.report import render_table
from repro.harness.spec import SweepPoint, SweepSpec, register

COLUMNS = ("parameter", "ccsvm_simulated", "amd_apu_a8_3850")


def rows(ccsvm: CCSVMSystemConfig = None,
         apu: APUSystemConfig = None) -> List[Dict[str, object]]:
    """Build Table 2 rows from the two configurations."""
    ccsvm = ccsvm if ccsvm is not None else ccsvm_system()
    apu = apu if apu is not None else amd_apu_system()
    return [
        {"parameter": "CPU cores",
         "ccsvm_simulated": f"{ccsvm.cpu.count} in-order x86 @ "
                            f"{ccsvm.cpu.frequency_ghz} GHz, max IPC {ccsvm.cpu.max_ipc}",
         "amd_apu_a8_3850": f"{apu.cpu.count} out-of-order x86 @ "
                            f"{apu.cpu.frequency_ghz} GHz, max IPC {apu.cpu.max_ipc}"},
        {"parameter": "Throughput cores",
         "ccsvm_simulated": f"{ccsvm.mttop.count} MTTOP cores @ "
                            f"{ccsvm.mttop.frequency_mhz:.0f} MHz, "
                            f"{ccsvm.mttop.simd_width}-wide, "
                            f"{ccsvm.mttop.thread_contexts} contexts each",
         "amd_apu_a8_3850": f"{apu.gpu.simd_units} SIMD units x "
                            f"{apu.gpu.vliw_lanes} VLIW lanes @ "
                            f"{apu.gpu.frequency_mhz:.0f} MHz"},
        {"parameter": "Peak throughput ops/cycle",
         "ccsvm_simulated": ccsvm.mttop.max_operations_per_cycle,
         "amd_apu_a8_3850": f"{apu.gpu.lanes}-{apu.gpu.lanes * 4} "
                            "(VLIW utilisation 1-4)"},
        {"parameter": "CPU L1",
         "ccsvm_simulated": f"{ccsvm.cpu.l1_size_bytes // 1024} KiB, "
                            f"{ccsvm.cpu.l1_associativity}-way, "
                            f"{ccsvm.cpu.l1_hit_cycles}-cycle hit",
         "amd_apu_a8_3850": f"{apu.cpu.l1_size_bytes // 1024} KiB, "
                            f"{apu.cpu.l1_associativity}-way, {apu.cpu.l1_hit_ns} ns hit"},
        {"parameter": "MTTOP/GPU L1",
         "ccsvm_simulated": f"{ccsvm.mttop.l1_size_bytes // 1024} KiB, "
                            f"{ccsvm.mttop.l1_associativity}-way, "
                            f"{ccsvm.mttop.l1_hit_cycles}-cycle hit",
         "amd_apu_a8_3850": f"{apu.gpu.local_memory_bytes // 1024} KiB local memory "
                            "per SIMD unit"},
        {"parameter": "Shared / L2 cache",
         "ccsvm_simulated": f"{ccsvm.l2.total_size_bytes // (1024 * 1024)} MiB inclusive, "
                            f"{ccsvm.l2.banks} banks, directory embedded",
         "amd_apu_a8_3850": f"{apu.cpu.l2_size_bytes // (1024 * 1024)} MiB private per "
                            f"CPU core, {apu.cpu.l2_hit_ns} ns hit"},
        {"parameter": "TLB",
         "ccsvm_simulated": f"{ccsvm.cpu.tlb_entries}-entry per core (CPU and MTTOP)",
         "amd_apu_a8_3850": f"{apu.cpu.tlb_entries}-entry L2 TLB per CPU core"},
        {"parameter": "Off-chip memory",
         "ccsvm_simulated": f"{ccsvm.dram.size_bytes // (1 << 30)} GiB, "
                            f"{ccsvm.dram.latency_ns:.0f} ns",
         "amd_apu_a8_3850": f"{apu.dram.size_bytes // (1 << 30)} GiB DDR3, "
                            f"{apu.dram.latency_ns:.0f} ns"},
        {"parameter": "On-chip network",
         "ccsvm_simulated": f"2D torus, {ccsvm.noc.link_bandwidth_gbps:.0f} GB/s links",
         "amd_apu_a8_3850": "CPU crossbar; CPUs/GPU connected to memory controllers"},
    ]


def build_points(full: bool = False,
                 ccsvm: Optional[CCSVMSystemConfig] = None,
                 apu: Optional[APUSystemConfig] = None) -> List[SweepPoint]:
    """Table 2 is a single 'point' that emits every parameter row."""
    return [SweepPoint(spec="table2", point_id="configs",
                       func="repro.experiments.table2:rows",
                       kwargs={"ccsvm": ccsvm, "apu": apu})]


def run(ccsvm: Optional[CCSVMSystemConfig] = None,
        apu: Optional[APUSystemConfig] = None,
        runner: Optional["SweepRunner"] = None) -> List[Dict[str, object]]:
    """Build the Table 2 rows through the sweep harness."""
    from repro.harness.runner import SweepRunner

    runner = runner if runner is not None else SweepRunner()
    return runner.run_spec(SPEC, ccsvm=ccsvm, apu=apu).result


def render(table_rows: Optional[Sequence[Dict[str, object]]] = None) -> str:
    """Format Table 2."""
    return render_table(table_rows if table_rows is not None else rows(), COLUMNS,
                        title="Table 2 — simulated CCSVM system vs AMD APU")


SPEC = register(SweepSpec(
    name="table2",
    title="System configurations: simulated CCSVM chip vs AMD APU",
    build_points=build_points,
    render=render,
))
