"""Figure 6: all-pairs shortest path, runtime relative to the AMD CPU core.

Floyd-Warshall needs a global barrier per pivot iteration.  On the APU each
iteration is a separate OpenCL kernel launch, so the APU never beats its own
CPU core; under CCSVM/xthreads the threads are launched once and each
barrier is a handful of coherent memory operations, so the chip outperforms
the APU by roughly two orders of magnitude even after discounting
compilation and initialisation (Section 5.2).

One comparison :class:`~repro.api.Scenario`: ``apsp`` on ``cpu`` / ``apu``
/ ``ccsvm`` across a graph-size grid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.harness.runner import SweepRunner
    from repro.workloads.base import WorkloadResult

from repro.api import Scenario
from repro.config import APUSystemConfig, CCSVMSystemConfig
from repro.experiments.report import full_sweep_enabled, render_table
from repro.harness.spec import SweepPoint, SweepSpec, register

DEFAULT_SIZES = (8, 12, 16, 24)
FULL_SWEEP_SIZES = (8, 12, 16, 24, 32, 48)

COLUMNS = (
    "size",
    "cpu_ms",
    "apu_opencl_ms",
    "apu_opencl_nosetup_ms",
    "ccsvm_xthreads_ms",
    "rel_apu_opencl",
    "rel_apu_nosetup",
    "rel_ccsvm",
)


def derive_row(results: "Dict[str, WorkloadResult]",
               params: Dict[str, object]) -> Dict[str, object]:
    """Fold one graph size's three system runs into its Figure 6 row."""
    cpu, apu, ccsvm = results["cpu"], results["apu"], results["ccsvm"]
    apu_nosetup_ps = apu.time_without_setup_ps or apu.time_ps
    return {
        "size": params["size"],
        "cpu_ms": cpu.time_ms,
        "apu_opencl_ms": apu.time_ms,
        "apu_opencl_nosetup_ms": apu_nosetup_ps / 1e9,
        "ccsvm_xthreads_ms": ccsvm.time_ms,
        "rel_apu_opencl": apu.time_ps / cpu.time_ps,
        "rel_apu_nosetup": apu_nosetup_ps / cpu.time_ps,
        "rel_ccsvm": ccsvm.time_ps / cpu.time_ps,
    }


SCENARIO = Scenario(
    name="figure6",
    workload="apsp",
    systems=("cpu", "apu", "ccsvm"),
    grid={"size": DEFAULT_SIZES},
    full_grid={"size": FULL_SWEEP_SIZES},
    seed=11,
    derive="repro.experiments.figure6:derive_row",
)


def build_points(full: bool = False, sizes: Optional[Sequence[int]] = None,
                 ccsvm_config: Optional[CCSVMSystemConfig] = None,
                 apu_config: Optional[APUSystemConfig] = None,
                 seed: int = 11) -> List[SweepPoint]:
    """Expand the Figure 6 sweep into one point per graph size."""
    return SCENARIO.points(
        full=full, seed=seed,
        grid=None if sizes is None else {"size": tuple(sizes)},
        configs={"ccsvm": ccsvm_config, "apu": apu_config, "cpu": apu_config})


def run(sizes: Optional[Sequence[int]] = None,
        ccsvm_config: Optional[CCSVMSystemConfig] = None,
        apu_config: Optional[APUSystemConfig] = None,
        seed: int = 11, runner: Optional["SweepRunner"] = None
        ) -> List[Dict[str, object]]:
    """Run the Figure 6 sweep and return one row per graph size."""
    from repro.harness.runner import SweepRunner

    runner = runner if runner is not None else SweepRunner()
    return runner.run_spec(SPEC, full=full_sweep_enabled(), sizes=sizes,
                           ccsvm_config=ccsvm_config, apu_config=apu_config,
                           seed=seed).result


def render(rows: Sequence[Dict[str, object]]) -> str:
    """Format the Figure 6 rows."""
    return render_table(rows, COLUMNS,
                        title="Figure 6 — all-pairs shortest path, runtime relative "
                              "to one AMD CPU core (lower is better)")


SPEC = register(SweepSpec(
    name="figure6",
    title="All-pairs shortest path runtime relative to one AMD CPU core",
    build_points=build_points,
    render=render,
))
