"""Figure 5: dense matrix multiply, runtime relative to the AMD CPU core.

The paper plots log-scale runtimes of (a) the APU running OpenCL (full
runtime), (b) the APU with compilation and OpenCL initialisation excluded,
and (c) the CCSVM chip running xthreads — all relative to the runtime of a
single AMD CPU core — as a function of matrix size.  The expected shape:
the APU is orders of magnitude slower than everything at small sizes
(launch/compile overhead), and approaches or overtakes CCSVM only as the
matrix grows; CCSVM profits from offloading even small matrices.

The sweep is one comparison :class:`~repro.api.Scenario`: the ``matmul``
workload on the ``cpu`` / ``apu`` / ``ccsvm`` system presets across a
matrix-size grid, with :func:`derive_row` folding each size's three runs
into one table row.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.harness.runner import SweepRunner
    from repro.workloads.base import WorkloadResult

from repro.api import Scenario
from repro.config import APUSystemConfig, CCSVMSystemConfig
from repro.experiments.report import full_sweep_enabled, render_table
from repro.harness.spec import SweepPoint, SweepSpec, register

#: Matrix sizes used by default (kept simulator-tractable; the paper sweeps
#: up to 1024 on real hardware).
DEFAULT_SIZES = (8, 12, 16, 24, 32)
FULL_SWEEP_SIZES = (8, 12, 16, 24, 32, 48, 64)

COLUMNS = (
    "size",
    "cpu_ms",
    "apu_opencl_ms",
    "apu_opencl_nosetup_ms",
    "ccsvm_xthreads_ms",
    "rel_apu_opencl",
    "rel_apu_nosetup",
    "rel_ccsvm",
)


def derive_row(results: "Dict[str, WorkloadResult]",
               params: Dict[str, object]) -> Dict[str, object]:
    """Fold one size's three system runs into its Figure 5 row."""
    cpu, apu, ccsvm = results["cpu"], results["apu"], results["ccsvm"]
    apu_nosetup_ps = apu.time_without_setup_ps or apu.time_ps
    return {
        "size": params["size"],
        "cpu_ms": cpu.time_ms,
        "apu_opencl_ms": apu.time_ms,
        "apu_opencl_nosetup_ms": apu_nosetup_ps / 1e9,
        "ccsvm_xthreads_ms": ccsvm.time_ms,
        "rel_apu_opencl": apu.time_ps / cpu.time_ps,
        "rel_apu_nosetup": apu_nosetup_ps / cpu.time_ps,
        "rel_ccsvm": ccsvm.time_ps / cpu.time_ps,
    }


SCENARIO = Scenario(
    name="figure5",
    workload="matmul",
    systems=("cpu", "apu", "ccsvm"),
    grid={"size": DEFAULT_SIZES},
    full_grid={"size": FULL_SWEEP_SIZES},
    seed=7,
    derive="repro.experiments.figure5:derive_row",
)


def build_points(full: bool = False, sizes: Optional[Sequence[int]] = None,
                 ccsvm_config: Optional[CCSVMSystemConfig] = None,
                 apu_config: Optional[APUSystemConfig] = None,
                 seed: int = 7) -> List[SweepPoint]:
    """Expand the Figure 5 sweep into one point per matrix size."""
    return SCENARIO.points(
        full=full, seed=seed,
        grid=None if sizes is None else {"size": tuple(sizes)},
        configs={"ccsvm": ccsvm_config, "apu": apu_config, "cpu": apu_config})


def run(sizes: Optional[Sequence[int]] = None,
        ccsvm_config: Optional[CCSVMSystemConfig] = None,
        apu_config: Optional[APUSystemConfig] = None,
        seed: int = 7, runner: Optional["SweepRunner"] = None
        ) -> List[Dict[str, object]]:
    """Run the Figure 5 sweep and return one row per matrix size."""
    from repro.harness.runner import SweepRunner

    runner = runner if runner is not None else SweepRunner()
    return runner.run_spec(SPEC, full=full_sweep_enabled(), sizes=sizes,
                           ccsvm_config=ccsvm_config, apu_config=apu_config,
                           seed=seed).result


def render(rows: Sequence[Dict[str, object]]) -> str:
    """Format the Figure 5 rows (relative runtimes, log-scale in the paper)."""
    return render_table(rows, COLUMNS,
                        title="Figure 5 — dense matrix multiply, runtime relative "
                              "to one AMD CPU core (lower is better)")


SPEC = register(SweepSpec(
    name="figure5",
    title="Dense matrix multiply runtime relative to one AMD CPU core",
    build_points=build_points,
    render=render,
))
