"""Registry of workload variants, keyed ``(workload, system)``.

Historically every workload module exposed its systems through an implicit
naming convention — ``run_cpu`` / ``run_opencl`` / ``run_ccsvm`` — and each
experiment hand-wired calls to those functions.  The registry replaces the
convention with an explicit contract: each workload registers one
*variant* per system it can run on, and every variant shares the uniform
signature::

    run(config, *, seed, **params) -> WorkloadResult

``config`` is the system configuration dataclass (``None`` selects the
system's registered preset), ``seed`` feeds the workload's input
generators, and ``params`` are the workload's own knobs (``size``,
``density``, ``bodies``, ...).  Because a variant is addressed by two
plain strings, sweep points can reference work by name — picklable,
diffable, and stable across refactors — instead of by function object.

Variant *system* keys name the execution model, matching the paper's
three columns plus the pthreads baseline:

========== =============================================================
``cpu``      sequential run on one AMD APU CPU core
``apu``      the APU's GPU through the OpenCL runtime model
``ccsvm``    the simulated CCSVM chip running xthreads
``pthreads`` the APU's four CPU cores under pthreads (Barnes-Hut only)
========== =============================================================

System *presets* (named configurations such as ``ccsvm-small``) live in
:mod:`repro.systems`; they map onto these variant keys.  Several presets
may share one variant: the hierarchy-shape presets (``ccsvm-l3``,
``ccsvm-no-tlb``, ``apu-shared-l2``) reuse the ``ccsvm`` / ``pthreads``
variants unchanged, because reshaping the memory system is purely a
configuration change on the unified :mod:`repro.mem` levels — a workload
never needs a new variant to run on a new hierarchy shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ReproError
from repro.workloads.base import WorkloadResult


class WorkloadRegistryError(ReproError):
    """A workload variant lookup or registration was invalid."""


@dataclass(frozen=True)
class WorkloadVariant:
    """One registered ``(workload, system)`` entry.

    ``func`` has the uniform signature ``run(config, *, seed, **params)``
    and returns a :class:`~repro.workloads.base.WorkloadResult`.
    """

    workload: str
    system: str
    func: Callable[..., WorkloadResult]
    description: str = ""

    @property
    def ref(self) -> str:
        """The stable ``module:qualname`` reference of the variant function."""
        return f"{self.func.__module__}:{self.func.__qualname__}"


_VARIANTS: Dict[Tuple[str, str], WorkloadVariant] = {}


def register_variant(workload: str, system: str, *, description: str = ""):
    """Decorator registering ``func`` as the ``(workload, system)`` variant.

    Registration is idempotent per function (so module re-imports are
    safe) but a *different* function under an already-taken key is a bug
    and raises.
    """

    def decorate(func: Callable[..., WorkloadResult]):
        key = (workload, system)
        existing = _VARIANTS.get(key)
        if existing is not None and existing.func is not func:
            raise WorkloadRegistryError(
                f"workload variant {workload}/{system} registered twice")
        _VARIANTS[key] = WorkloadVariant(workload=workload, system=system,
                                         func=func, description=description)
        return func

    return decorate


def get_variant(workload: str, system: str) -> WorkloadVariant:
    """Look up the registered variant for ``(workload, system)``."""
    load_builtin_workloads()
    try:
        return _VARIANTS[(workload, system)]
    except KeyError:
        if not any(key[0] == workload for key in _VARIANTS):
            known = ", ".join(workload_names()) or "(none)"
            raise WorkloadRegistryError(
                f"no workload named {workload!r}; known workloads: {known}"
            ) from None
        systems = ", ".join(sorted(variants_for(workload)))
        raise WorkloadRegistryError(
            f"workload {workload!r} has no {system!r} variant; "
            f"it runs on: {systems}") from None


def workload_names() -> List[str]:
    """Names of every workload with at least one registered variant, sorted."""
    load_builtin_workloads()
    return sorted({workload for workload, _ in _VARIANTS})


def variants_for(workload: str) -> Dict[str, WorkloadVariant]:
    """Map ``system -> variant`` for one workload (sorted by system)."""
    load_builtin_workloads()
    found = {system: variant for (name, system), variant in _VARIANTS.items()
             if name == workload}
    if not found:
        known = ", ".join(workload_names()) or "(none)"
        raise WorkloadRegistryError(
            f"no workload named {workload!r}; known workloads: {known}")
    return dict(sorted(found.items()))


def load_builtin_workloads() -> None:
    """Import the workload modules so their variants self-register."""
    from repro.workloads import (  # noqa: F401
        apsp, barnes_hut, cache_replay, matmul, sparse_matmul, trace_replay,
        vector_add)
