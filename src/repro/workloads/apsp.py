"""All-pairs shortest path (Figure 6).

Floyd-Warshall over an adjacency matrix: a triply-nested loop whose
outermost iteration (over the pivot ``k``) requires a global barrier before
the next iteration may start.  This synchronisation pattern is what makes
the workload interesting:

* under **xthreads**, the MTTOP threads are launched once and the barrier is
  a handful of coherent loads/stores (the ``cpu_mttop_barrier`` of Table 1),
  so the parallel phases stay cheap;
* under **OpenCL** on the APU, every pivot iteration is a separate kernel
  launch with driver overhead and a CPU-cache flush, which is why the
  paper's APU never beats its own CPU core on this benchmark.
"""

from __future__ import annotations

from typing import Optional

from repro.baseline.apu import AMDAPU
from repro.config import APUSystemConfig, CCSVMSystemConfig, ccsvm_system
from repro.core.chip import CCSVMChip
from repro.core.xthreads.api import (
    CpuMttopBarrier,
    CreateMThread,
    WaitCond,
    mttop_barrier,
    mttop_signal,
)
from repro.cores.isa import (Compute, Load, LoadVector, Malloc, Store,
                             StoreVector, word_addr)
from repro.workloads import reference
from repro.workloads.base import WorkloadResult
from repro.workloads.generators import weighted_digraph
from repro.workloads.registry import register_variant

WORKLOAD = "apsp"


# --------------------------------------------------------------------------- #
# Kernels
# --------------------------------------------------------------------------- #
def apsp_pivot_device_kernel(tid: int, args) -> object:
    """Relax one row (``tid``) against pivot ``k`` (one OpenCL launch's work)."""
    dist, size, k = args
    row_base = tid * size
    d_ik = yield Load(word_addr(dist, row_base + k))
    for j in range(size):
        d_kj = yield Load(word_addr(dist, k * size + j))
        d_ij = yield Load(word_addr(dist, row_base + j))
        yield Compute(2)
        if d_ik + d_kj < d_ij:
            yield Store(word_addr(dist, row_base + j), d_ik + d_kj)


def apsp_xthreads_kernel(tid: int, args) -> object:
    """xthreads variant: one thread per row, barrier with the CPU per pivot.

    The thread is launched once and stays resident across every pivot
    iteration — the single-launch structure the paper credits for the CCSVM
    advantage on this benchmark.
    """
    dist, size, barrier, sense, done = args
    for k in range(size):
        yield from apsp_pivot_device_kernel(tid, (dist, size, k))
        # Sense-reversing barrier with the CPU: the sense word starts at 0
        # and the CPU flips it after every pivot, so iteration k is released
        # when the sense becomes 1 - (k % 2).
        yield from mttop_barrier(barrier, sense, tid, release_sense=1 - (k % 2))
    yield from mttop_signal(done, tid)


# --------------------------------------------------------------------------- #
# CCSVM / xthreads
# --------------------------------------------------------------------------- #
def run_ccsvm(size: int = 16, seed: int = 11,
              config: Optional[CCSVMSystemConfig] = None) -> WorkloadResult:
    """Floyd-Warshall with one resident MTTOP thread per row."""
    system = config if config is not None else ccsvm_system()
    adjacency = weighted_digraph(size, seed)
    expected = reference.floyd_warshall(adjacency, size)
    if size > system.mttop.total_thread_contexts:
        raise ValueError(
            f"APSP needs one thread context per row; {size} rows exceed "
            f"{system.mttop.total_thread_contexts} contexts"
        )

    chip = CCSVMChip(system)
    chip.create_process(WORKLOAD)
    addresses = {}

    def host():
        dist = yield Malloc(size * size * 8)
        barrier = yield Malloc(size * 8)
        sense = yield Malloc(8)
        done = yield Malloc(size * 8)
        addresses["dist"] = dist
        # One vector store preserving the scalar loops' exact access order
        # (dist row-major, then barrier/done interleaved, then sense).
        init_addrs = [word_addr(dist, i) for i in range(len(adjacency))]
        init_values = list(adjacency)
        for t in range(size):
            init_addrs += [word_addr(barrier, t), word_addr(done, t)]
            init_values += [0, 0]
        init_addrs.append(sense)
        init_values.append(0)
        yield StoreVector(tuple(init_addrs), tuple(init_values))
        yield CreateMThread(apsp_xthreads_kernel,
                            (dist, size, barrier, sense, done), 0, size - 1)
        for _ in range(size):
            yield CpuMttopBarrier(barrier, sense, 0, size - 1)
        yield WaitCond(done, 0, size - 1)

    result = chip.run(host())
    produced = chip.read_array(addresses["dist"], size * size)
    return WorkloadResult(system="ccsvm_xthreads", workload=WORKLOAD,
                          params={"size": size},
                          time_ps=result.time_ps,
                          dram_accesses=result.dram_accesses,
                          verified=produced == expected,
                          counters=result.stats.to_dict())


# --------------------------------------------------------------------------- #
# APU / OpenCL
# --------------------------------------------------------------------------- #
def run_opencl(size: int = 16, seed: int = 11,
               config: Optional[APUSystemConfig] = None) -> WorkloadResult:
    """Floyd-Warshall on the APU: one kernel launch per pivot iteration."""
    apu = AMDAPU(config)
    adjacency = weighted_digraph(size, seed)
    expected = reference.floyd_warshall(adjacency, size)

    session = apu.opencl_session()
    session.build_program(["apsp_pivot"])
    buf = session.create_buffer(size * size * 8)
    session.map_buffer_write(buf, adjacency)
    kernel = session.create_kernel("apsp_pivot", apsp_pivot_device_kernel)
    for k in range(size):
        session.enqueue_nd_range(kernel, size, args=(buf.address, size, k))
    produced = session.map_buffer_read(buf, size * size)

    return WorkloadResult(system="apu_opencl", workload=WORKLOAD,
                          params={"size": size},
                          time_ps=session.elapsed_ps,
                          time_without_setup_ps=session.elapsed_without_setup_ps,
                          dram_accesses=apu.dram_accesses,
                          verified=produced == expected)


# --------------------------------------------------------------------------- #
# Single AMD CPU core
# --------------------------------------------------------------------------- #
def run_cpu(size: int = 16, seed: int = 11,
            config: Optional[APUSystemConfig] = None) -> WorkloadResult:
    """Sequential Floyd-Warshall on one APU CPU core."""
    apu = AMDAPU(config)
    adjacency = weighted_digraph(size, seed)
    expected = reference.floyd_warshall(adjacency, size)
    dist = apu.allocate(size * size * 8)

    def program():
        yield StoreVector(
            tuple(word_addr(dist, i) for i in range(len(adjacency))),
            tuple(adjacency))
        for k in range(size):
            for i in range(size):
                d_ik = yield Load(word_addr(dist, i * size + k))
                for j in range(size):
                    d_kj, d_ij = yield LoadVector(
                        (word_addr(dist, k * size + j),
                         word_addr(dist, i * size + j)))
                    yield Compute(2)
                    if d_ik + d_kj < d_ij:
                        yield Store(word_addr(dist, i * size + j), d_ik + d_kj)

    run = apu.run_on_cpu(program())
    produced = apu.read_array(dist, size * size)
    return WorkloadResult(system="apu_cpu", workload=WORKLOAD,
                          params={"size": size},
                          time_ps=run.time_ps,
                          dram_accesses=apu.dram_accesses,
                          verified=produced == expected)


# --------------------------------------------------------------------------- #
# Registry variants — uniform signature run(config, *, seed, **params)
# --------------------------------------------------------------------------- #
@register_variant(WORKLOAD, "cpu",
                  description="sequential Floyd-Warshall on one APU CPU core")
def cpu_variant(config: Optional[APUSystemConfig] = None, *, seed: int = 11,
                size: int = 16) -> WorkloadResult:
    return run_cpu(size=size, seed=seed, config=config)


@register_variant(WORKLOAD, "apu",
                  description="one OpenCL launch per pivot iteration")
def apu_variant(config: Optional[APUSystemConfig] = None, *, seed: int = 11,
                size: int = 16) -> WorkloadResult:
    return run_opencl(size=size, seed=seed, config=config)


@register_variant(WORKLOAD, "ccsvm",
                  description="resident xthreads with coherent-memory barriers")
def ccsvm_variant(config: Optional[CCSVMSystemConfig] = None, *, seed: int = 11,
                  size: int = 16) -> WorkloadResult:
    return run_ccsvm(size=size, seed=seed, config=config)
