"""Vector addition — the running example of Figures 3 and 4.

Not part of the paper's evaluation figures, but it is the example both code
listings implement, so it serves as the quickstart workload and as the
simplest end-to-end test of every runtime.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baseline.apu import AMDAPU
from repro.config import APUSystemConfig, CCSVMSystemConfig, ccsvm_system
from repro.core.chip import CCSVMChip
from repro.core.xthreads.api import CreateMThread, WaitCond, mttop_signal
from repro.cores.isa import (Compute, Load, LoadVector, Malloc, Store,
                             StoreVector, word_addr)
from repro.workloads import reference
from repro.workloads.base import WorkloadResult
from repro.workloads.generators import vector
from repro.workloads.registry import register_variant

WORKLOAD = "vector_add"


# --------------------------------------------------------------------------- #
# Kernels
# --------------------------------------------------------------------------- #
def vector_add_device_kernel(tid: int, args) -> object:
    """One element per work item: ``sum[tid] = v1[tid] + v2[tid]``."""
    v1, v2, out = args
    a = yield Load(word_addr(v1, tid))
    b = yield Load(word_addr(v2, tid))
    yield Compute(1)
    yield Store(word_addr(out, tid), a + b)


def vector_add_xthreads_kernel(tid: int, args) -> object:
    """The xthreads variant of Figure 4: compute, then signal the CPU."""
    v1, v2, out, done = args
    a = yield Load(word_addr(v1, tid))
    b = yield Load(word_addr(v2, tid))
    yield Compute(1)
    yield Store(word_addr(out, tid), a + b)
    yield from mttop_signal(done, tid)


# --------------------------------------------------------------------------- #
# CCSVM / xthreads
# --------------------------------------------------------------------------- #
def run_ccsvm(size: int = 256, seed: int = 1,
              config: Optional[CCSVMSystemConfig] = None) -> WorkloadResult:
    """Run vector add with xthreads on the CCSVM chip (Figure 4's program)."""
    system = config if config is not None else ccsvm_system()
    v1 = vector(size, seed)
    v2 = vector(size, seed + 1)
    expected = reference.vector_add(v1, v2)

    chip = CCSVMChip(system)
    chip.create_process(WORKLOAD)
    addresses = {}

    def host():
        a = yield Malloc(size * 8)
        b = yield Malloc(size * 8)
        out = yield Malloc(size * 8)
        done = yield Malloc(size * 8)
        addresses["out"] = out
        # One vector store with the same interleaved order the scalar loop
        # used, so the cache/TLB see the identical access sequence.
        init_addrs = []
        init_values = []
        for i in range(size):
            init_addrs += [word_addr(a, i), word_addr(b, i), word_addr(done, i)]
            init_values += [v1[i], v2[i], 0]
        yield StoreVector(tuple(init_addrs), tuple(init_values))
        yield CreateMThread(vector_add_xthreads_kernel, (a, b, out, done), 0, size - 1)
        yield WaitCond(done, 0, size - 1)

    result = chip.run(host())
    produced = chip.read_array(addresses["out"], size)
    return WorkloadResult(system="ccsvm_xthreads", workload=WORKLOAD,
                          params={"size": size},
                          time_ps=result.time_ps,
                          dram_accesses=result.dram_accesses,
                          verified=produced == expected,
                          counters=result.stats.to_dict())


# --------------------------------------------------------------------------- #
# APU / OpenCL
# --------------------------------------------------------------------------- #
def run_opencl(size: int = 256, seed: int = 1,
               config: Optional[APUSystemConfig] = None) -> WorkloadResult:
    """Run vector add through the OpenCL session model (Figure 3's program)."""
    apu = AMDAPU(config)
    v1 = vector(size, seed)
    v2 = vector(size, seed + 1)
    expected = reference.vector_add(v1, v2)

    session = apu.opencl_session()
    session.build_program(["vector_add"])
    buf_a = session.create_buffer(size * 8)
    buf_b = session.create_buffer(size * 8)
    buf_out = session.create_buffer(size * 8)
    session.map_buffer_write(buf_a, v1)
    session.map_buffer_write(buf_b, v2)
    kernel = session.create_kernel("vector_add", vector_add_device_kernel)
    session.enqueue_nd_range(kernel, size,
                             args=(buf_a.address, buf_b.address, buf_out.address))
    produced = session.map_buffer_read(buf_out, size)

    return WorkloadResult(system="apu_opencl", workload=WORKLOAD,
                          params={"size": size},
                          time_ps=session.elapsed_ps,
                          time_without_setup_ps=session.elapsed_without_setup_ps,
                          dram_accesses=apu.dram_accesses,
                          verified=produced == expected)


# --------------------------------------------------------------------------- #
# Single AMD CPU core
# --------------------------------------------------------------------------- #
def run_cpu(size: int = 256, seed: int = 1,
            config: Optional[APUSystemConfig] = None) -> WorkloadResult:
    """Run vector add sequentially on one APU CPU core."""
    apu = AMDAPU(config)
    v1 = vector(size, seed)
    v2 = vector(size, seed + 1)
    expected = reference.vector_add(v1, v2)

    a = apu.allocate(size * 8)
    b = apu.allocate(size * 8)
    out = apu.allocate(size * 8)

    def program():
        init_addrs = []
        init_values = []
        for i in range(size):
            init_addrs += [word_addr(a, i), word_addr(b, i)]
            init_values += [v1[i], v2[i]]
        yield StoreVector(tuple(init_addrs), tuple(init_values))
        for i in range(size):
            x, y = yield LoadVector((word_addr(a, i), word_addr(b, i)))
            yield Compute(1)
            yield Store(word_addr(out, i), x + y)

    run = apu.run_on_cpu(program())
    produced = apu.read_array(out, size)
    return WorkloadResult(system="apu_cpu", workload=WORKLOAD,
                          params={"size": size},
                          time_ps=run.time_ps,
                          dram_accesses=apu.dram_accesses,
                          verified=produced == expected)


# --------------------------------------------------------------------------- #
# Registry variants — uniform signature run(config, *, seed, **params)
# --------------------------------------------------------------------------- #
@register_variant(WORKLOAD, "cpu",
                  description="sequential loop on one APU CPU core")
def cpu_variant(config: Optional[APUSystemConfig] = None, *, seed: int = 1,
                size: int = 256) -> WorkloadResult:
    return run_cpu(size=size, seed=seed, config=config)


@register_variant(WORKLOAD, "apu",
                  description="OpenCL kernel on the APU GPU (Figure 3)")
def apu_variant(config: Optional[APUSystemConfig] = None, *, seed: int = 1,
                size: int = 256) -> WorkloadResult:
    return run_opencl(size=size, seed=seed, config=config)


@register_variant(WORKLOAD, "ccsvm",
                  description="xthreads on the CCSVM chip (Figure 4)")
def ccsvm_variant(config: Optional[CCSVMSystemConfig] = None, *, seed: int = 1,
                  size: int = 256) -> WorkloadResult:
    return run_ccsvm(size=size, seed=seed, config=config)
