"""Common result type and helpers shared by every workload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ReproError


class WorkloadVerificationError(ReproError):
    """A workload's computed results did not match the golden reference."""


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of running one workload variant on one system.

    ``time_ps`` is the simulated (or modelled) execution time; for OpenCL
    runs ``time_without_setup_ps`` additionally excludes program compilation
    and context initialisation, matching the paper's second APU datapoint in
    Figure 5.
    """

    system: str
    workload: str
    params: Dict[str, object]
    time_ps: int
    dram_accesses: int
    verified: bool
    time_without_setup_ps: Optional[int] = None
    extra: Dict[str, object] = field(default_factory=dict)
    #: Flat counter snapshot (``StatsRegistry.to_dict()``) of the simulated
    #: run, so the sweep harness can merge stats across experiment points.
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def time_ns(self) -> float:
        """Execution time in nanoseconds."""
        return self.time_ps / 1_000.0

    @property
    def time_ms(self) -> float:
        """Execution time in milliseconds."""
        return self.time_ps / 1e9

    def speedup_over(self, other: "WorkloadResult") -> float:
        """How many times faster this run is than ``other``."""
        if self.time_ps == 0:
            return float("inf")
        return other.time_ps / self.time_ps

    def relative_runtime(self, baseline: "WorkloadResult") -> float:
        """This run's time divided by the baseline's (Figure 5/6 y-axis)."""
        if baseline.time_ps == 0:
            return float("inf")
        return self.time_ps / baseline.time_ps


def require_verified(result: WorkloadResult) -> WorkloadResult:
    """Raise unless ``result`` passed verification; returns it for chaining."""
    if not result.verified:
        raise WorkloadVerificationError(
            f"{result.workload} on {result.system} with {result.params} produced "
            "incorrect results"
        )
    return result
