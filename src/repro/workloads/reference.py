"""Golden reference implementations.

Plain Python implementations of each workload's computation, used by every
runtime variant (CCSVM, OpenCL, CPU, pthreads) to verify that the simulated
run produced correct results.  References use the exact same integer /
fixed-point arithmetic as the kernels, so comparisons are bit-exact.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.workloads.generators import APSP_INFINITY


def vector_add(v1: Sequence[int], v2: Sequence[int]) -> List[int]:
    """Element-wise sum of two equal-length vectors."""
    return [a + b for a, b in zip(v1, v2)]


def matmul(a: Sequence[int], b: Sequence[int], size: int) -> List[int]:
    """Row-major dense matrix product of two ``size`` x ``size`` matrices."""
    result = [0] * (size * size)
    for i in range(size):
        for k in range(size):
            aik = a[i * size + k]
            if aik == 0:
                continue
            row_offset = i * size
            b_offset = k * size
            for j in range(size):
                result[row_offset + j] += aik * b[b_offset + j]
    return result


def floyd_warshall(adjacency: Sequence[int], size: int) -> List[int]:
    """All-pairs shortest paths over a row-major adjacency matrix."""
    dist = list(adjacency)
    for k in range(size):
        for i in range(size):
            dik = dist[i * size + k]
            if dik >= APSP_INFINITY:
                continue
            for j in range(size):
                candidate = dik + dist[k * size + j]
                if candidate < dist[i * size + j]:
                    dist[i * size + j] = candidate
    return dist


def sparse_matmul(a: Dict[Tuple[int, int], int],
                  b: Dict[Tuple[int, int], int],
                  size: int) -> Dict[Tuple[int, int], int]:
    """Product of two sparse matrices given as ``{(row, col): value}`` dicts."""
    b_rows: Dict[int, List[Tuple[int, int]]] = {}
    for (row, col), value in b.items():
        b_rows.setdefault(row, []).append((col, value))
    result: Dict[Tuple[int, int], int] = {}
    for (i, k), a_value in a.items():
        for j, b_value in b_rows.get(k, []):
            key = (i, j)
            result[key] = result.get(key, 0) + a_value * b_value
    return {key: value for key, value in result.items() if value != 0}
