"""Dense matrix multiplication (Figures 5 and 9).

The paper's first benchmark: a dense matrix-multiply kernel launched from a
CPU onto as many MTTOP cores as the matrix size can use, swept over matrix
sizes.  Small matrices expose the launch/communication overhead of the APU;
large matrices let the APU's raw GPU throughput catch up (Figure 5).  The
same runs also produce the off-chip DRAM access counts of Figure 9.

Work decomposition:

* **xthreads**: ``min(total MTTOP thread contexts, N*N)`` threads are
  launched once; thread ``t`` computes output elements ``t, t+T, t+2T, ...``
  (a cyclic distribution over output elements).
* **OpenCL**: one work item per output element, the natural OpenCL mapping
  (as in the paper's Figure 3 style of kernel).
* **CPU**: a standard triple loop on one core.
"""

from __future__ import annotations

from typing import Optional

from repro.baseline.apu import AMDAPU
from repro.config import APUSystemConfig, CCSVMSystemConfig, ccsvm_system
from repro.core.chip import CCSVMChip
from repro.core.xthreads.api import CreateMThread, WaitCond, mttop_signal
from repro.cores.isa import (Compute, Load, LoadVector, Malloc, Store,
                             StoreVector, word_addr)
from repro.workloads import reference
from repro.workloads.base import WorkloadResult
from repro.workloads.generators import dense_matrix
from repro.workloads.registry import register_variant

WORKLOAD = "matmul"


# --------------------------------------------------------------------------- #
# Kernels
# --------------------------------------------------------------------------- #
def matmul_device_kernel(tid: int, args) -> object:
    """Compute output elements ``tid, tid+stride, ...`` of ``C = A x B``."""
    a, b, c, size, stride = args
    for index in range(tid, size * size, stride):
        row, col = divmod(index, size)
        acc = 0
        for k in range(size):
            a_val = yield Load(word_addr(a, row * size + k))
            b_val = yield Load(word_addr(b, k * size + col))
            yield Compute(2)
            acc += a_val * b_val
        yield Store(word_addr(c, index), acc)


def matmul_xthreads_kernel(tid: int, args) -> object:
    """xthreads wrapper: compute the assigned elements, then signal done."""
    a, b, c, size, stride, done = args
    yield from matmul_device_kernel(tid, (a, b, c, size, stride))
    yield from mttop_signal(done, tid)


# --------------------------------------------------------------------------- #
# CCSVM / xthreads
# --------------------------------------------------------------------------- #
def run_ccsvm(size: int = 16, seed: int = 7,
              config: Optional[CCSVMSystemConfig] = None,
              threads: Optional[int] = None) -> WorkloadResult:
    """Dense MM with xthreads on the CCSVM chip."""
    system = config if config is not None else ccsvm_system()
    a_values = dense_matrix(size, seed)
    b_values = dense_matrix(size, seed + 1)
    expected = reference.matmul(a_values, b_values, size)

    chip = CCSVMChip(system)
    chip.create_process(WORKLOAD)
    if threads is None:
        threads = min(system.mttop.total_thread_contexts, size * size)
    addresses = {}

    def host():
        a = yield Malloc(size * size * 8)
        b = yield Malloc(size * size * 8)
        c = yield Malloc(size * size * 8)
        done = yield Malloc(threads * 8)
        addresses["c"] = c
        # One vector store preserving the scalar loops' exact access order.
        init_addrs = [word_addr(a, i) for i in range(len(a_values))] + \
                     [word_addr(b, i) for i in range(len(b_values))] + \
                     [word_addr(done, t) for t in range(threads)]
        init_values = list(a_values) + list(b_values) + [0] * threads
        yield StoreVector(tuple(init_addrs), tuple(init_values))
        yield CreateMThread(matmul_xthreads_kernel,
                            (a, b, c, size, threads, done), 0, threads - 1)
        yield WaitCond(done, 0, threads - 1)

    result = chip.run(host())
    produced = chip.read_array(addresses["c"], size * size)
    return WorkloadResult(system="ccsvm_xthreads", workload=WORKLOAD,
                          params={"size": size, "threads": threads},
                          time_ps=result.time_ps,
                          dram_accesses=result.dram_accesses,
                          verified=produced == expected,
                          counters=result.stats.to_dict())


# --------------------------------------------------------------------------- #
# APU / OpenCL
# --------------------------------------------------------------------------- #
def run_opencl(size: int = 16, seed: int = 7,
               config: Optional[APUSystemConfig] = None) -> WorkloadResult:
    """Dense MM through the OpenCL session on the APU model."""
    apu = AMDAPU(config)
    a_values = dense_matrix(size, seed)
    b_values = dense_matrix(size, seed + 1)
    expected = reference.matmul(a_values, b_values, size)

    session = apu.opencl_session()
    session.build_program(["matmul"])
    buf_a = session.create_buffer(size * size * 8)
    buf_b = session.create_buffer(size * size * 8)
    buf_c = session.create_buffer(size * size * 8)
    session.map_buffer_write(buf_a, a_values)
    session.map_buffer_write(buf_b, b_values)
    kernel = session.create_kernel("matmul", matmul_device_kernel)
    work_items = size * size
    session.enqueue_nd_range(kernel, work_items,
                             args=(buf_a.address, buf_b.address, buf_c.address,
                                   size, work_items))
    produced = session.map_buffer_read(buf_c, size * size)

    return WorkloadResult(system="apu_opencl", workload=WORKLOAD,
                          params={"size": size},
                          time_ps=session.elapsed_ps,
                          time_without_setup_ps=session.elapsed_without_setup_ps,
                          dram_accesses=apu.dram_accesses,
                          verified=produced == expected)


# --------------------------------------------------------------------------- #
# Single AMD CPU core
# --------------------------------------------------------------------------- #
def run_cpu(size: int = 16, seed: int = 7,
            config: Optional[APUSystemConfig] = None) -> WorkloadResult:
    """Dense MM as a sequential triple loop on one APU CPU core."""
    apu = AMDAPU(config)
    a_values = dense_matrix(size, seed)
    b_values = dense_matrix(size, seed + 1)
    expected = reference.matmul(a_values, b_values, size)

    a = apu.allocate(size * size * 8)
    b = apu.allocate(size * size * 8)
    c = apu.allocate(size * size * 8)

    def program():
        init_addrs = [word_addr(a, i) for i in range(len(a_values))] + \
                     [word_addr(b, i) for i in range(len(b_values))]
        yield StoreVector(tuple(init_addrs),
                          tuple(a_values) + tuple(b_values))
        for row in range(size):
            for col in range(size):
                acc = 0
                for k in range(size):
                    a_val, b_val = yield LoadVector(
                        (word_addr(a, row * size + k),
                         word_addr(b, k * size + col)))
                    yield Compute(2)
                    acc += a_val * b_val
                yield Store(word_addr(c, row * size + col), acc)

    run = apu.run_on_cpu(program())
    produced = apu.read_array(c, size * size)
    return WorkloadResult(system="apu_cpu", workload=WORKLOAD,
                          params={"size": size},
                          time_ps=run.time_ps,
                          dram_accesses=apu.dram_accesses,
                          verified=produced == expected)


# --------------------------------------------------------------------------- #
# Registry variants — uniform signature run(config, *, seed, **params)
# --------------------------------------------------------------------------- #
@register_variant(WORKLOAD, "cpu",
                  description="sequential triple loop on one APU CPU core")
def cpu_variant(config: Optional[APUSystemConfig] = None, *, seed: int = 7,
                size: int = 16) -> WorkloadResult:
    return run_cpu(size=size, seed=seed, config=config)


@register_variant(WORKLOAD, "apu",
                  description="OpenCL kernel on the APU GPU, one work item "
                              "per output element")
def apu_variant(config: Optional[APUSystemConfig] = None, *, seed: int = 7,
                size: int = 16) -> WorkloadResult:
    return run_opencl(size=size, seed=seed, config=config)


@register_variant(WORKLOAD, "ccsvm",
                  description="xthreads on the CCSVM chip, cyclic element "
                              "distribution")
def ccsvm_variant(config: Optional[CCSVMSystemConfig] = None, *, seed: int = 7,
                  size: int = 16,
                  threads: Optional[int] = None) -> WorkloadResult:
    return run_ccsvm(size=size, seed=seed, config=config, threads=threads)
