"""The paper's benchmark workloads.

Each workload module provides the same algorithm for every system the paper
measures:

* a **CCSVM/xthreads** variant (host program + MTTOP kernels) run on
  :class:`~repro.core.chip.CCSVMChip`;
* an **APU/OpenCL** variant run on :class:`~repro.baseline.apu.AMDAPU`
  through the OpenCL session model (where the paper has one — Barnes-Hut
  and sparse matrix multiply have no OpenCL version, same as the paper);
* an **AMD CPU core** variant (sequential, one APU CPU core), the
  normalisation baseline of Figures 5-8;
* for Barnes-Hut, a **pthreads** variant across the APU's four CPU cores.

Every variant computes real results that are checked against a golden
reference, so the timing comparisons are between runs that demonstrably did
the same work.
"""

from repro.workloads.base import WorkloadResult

__all__ = ["WorkloadResult"]
