"""Sparse matrix multiplication with dynamically allocated results (Figure 8).

The paper uses this benchmark to demonstrate that CCSVM + xthreads lets
MTTOP threads build *pointer-based, dynamically allocated* data structures:
both input matrices are stored as per-row linked lists of non-zero elements,
and each MTTOP thread constructs its output row as a new linked list whose
nodes it allocates with ``mttop_malloc`` — the allocation is shipped to a
CPU thread, which services requests one at a time (Section 5.3.2).  As the
matrices get denser the number of result non-zeros (and hence
``mttop_malloc`` calls) grows, which is what caps the speedup in the right
panel of Figure 8.

There is no OpenCL variant, exactly as in the paper ("As with barnes-hut,
there is no OpenCL version").

Memory layout:

* ``a_rows[i]`` / ``b_rows[i]``: head pointer (0 = empty) of row ``i``'s list;
* element node: three words ``{column, value, next_pointer}``;
* each thread owns a dense scratch row (``size`` words) used to accumulate
  one output row before it is converted into a linked list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baseline.apu import AMDAPU
from repro.config import APUSystemConfig, CCSVMSystemConfig, ccsvm_system
from repro.core.chip import CCSVMChip
from repro.core.xthreads.api import CreateMThread, WaitCond, mttop_signal
from repro.cores.isa import Compute, Load, Malloc, Store, word_addr
from repro.workloads import reference
from repro.workloads.base import WorkloadResult
from repro.workloads.generators import sparse_matrix
from repro.workloads.registry import register_variant

WORKLOAD = "sparse_matmul"

#: Words per linked-list element node: column, value, next pointer.
NODE_WORDS = 3


# --------------------------------------------------------------------------- #
# Kernels (shared by the xthreads and CPU variants)
# --------------------------------------------------------------------------- #
def sparse_row_kernel(tid: int, args) -> object:
    """Compute output rows ``tid, tid+stride, ...`` of ``C = A x B``.

    For each assigned row, walk row ``i`` of A; for every non-zero ``a_ik``
    walk row ``k`` of B, accumulating into the thread's dense scratch row;
    finally convert the scratch row into a freshly allocated linked list and
    install its head pointer in ``c_rows[i]``.
    """
    a_rows, b_rows, c_rows, scratch_base, size, stride = args
    scratch = word_addr(scratch_base, tid * size)
    for row in range(tid, size, stride):
        touched: List[int] = []
        a_node = yield Load(word_addr(a_rows, row))
        while a_node != 0:
            a_col = yield Load(a_node)
            a_val = yield Load(a_node + 8)
            b_node = yield Load(word_addr(b_rows, a_col))
            while b_node != 0:
                b_col = yield Load(b_node)
                b_val = yield Load(b_node + 8)
                current = yield Load(word_addr(scratch, b_col))
                if current == 0 and b_col not in touched:
                    touched.append(b_col)
                yield Compute(2)
                yield Store(word_addr(scratch, b_col), current + a_val * b_val)
                b_node = yield Load(b_node + 16)
            a_node = yield Load(a_node + 16)

        # Build the output row as a linked list (head insertion in column
        # order, so the list ends up sorted by descending column).
        head = 0
        for col in sorted(touched):
            value = yield Load(word_addr(scratch, col))
            yield Store(word_addr(scratch, col), 0)
            if value == 0:
                continue
            node = yield Malloc(NODE_WORDS * 8)
            yield Store(node, col)
            yield Store(node + 8, value)
            yield Store(node + 16, head)
            head = node
        yield Store(word_addr(c_rows, row), head)


def sparse_xthreads_kernel(tid: int, args) -> object:
    """xthreads wrapper: compute assigned rows, then signal completion."""
    a_rows, b_rows, c_rows, scratch_base, size, stride, done = args
    yield from sparse_row_kernel(tid, (a_rows, b_rows, c_rows, scratch_base,
                                       size, stride))
    yield from mttop_signal(done, tid)


# --------------------------------------------------------------------------- #
# Building the linked-list inputs / reading the linked-list output
# --------------------------------------------------------------------------- #
def _build_input_lists(entries: Dict[Tuple[int, int], int], size: int,
                       rows_base: int, write_word, allocate) -> None:
    """Materialise a sparse matrix as per-row linked lists in memory.

    ``write_word(addr, value)`` and ``allocate(bytes) -> addr`` abstract over
    the CCSVM chip's functional helpers and the APU's flat memory, so both
    variants share this builder (input construction is setup, not part of
    the timed region, matching the paper's use of pre-existing inputs).
    """
    by_row: Dict[int, List[Tuple[int, int]]] = {}
    for (row, col), value in entries.items():
        by_row.setdefault(row, []).append((col, value))
    for row in range(size):
        head = 0
        for col, value in sorted(by_row.get(row, []), reverse=True):
            node = allocate(NODE_WORDS * 8)
            write_word(node, col)
            write_word(node + 8, value)
            write_word(node + 16, head)
            head = node
        write_word(word_addr(rows_base, row), head)


def _read_result_lists(size: int, c_rows: int, read_word) -> Dict[Tuple[int, int], int]:
    """Walk the output linked lists and return ``{(row, col): value}``."""
    result: Dict[Tuple[int, int], int] = {}
    for row in range(size):
        node = read_word(word_addr(c_rows, row))
        while node != 0:
            col = read_word(node)
            value = read_word(node + 8)
            if value != 0:
                result[(row, col)] = value
            node = read_word(node + 16)
    return result


# --------------------------------------------------------------------------- #
# CCSVM / xthreads
# --------------------------------------------------------------------------- #
def run_ccsvm(size: int = 32, density: float = 0.05, seed: int = 23,
              config: Optional[CCSVMSystemConfig] = None,
              threads: Optional[int] = None) -> WorkloadResult:
    """Sparse MM with xthreads; result rows allocated via ``mttop_malloc``."""
    system = config if config is not None else ccsvm_system()
    a_entries = sparse_matrix(size, density, seed)
    b_entries = sparse_matrix(size, density, seed + 1)
    expected = reference.sparse_matmul(a_entries, b_entries, size)

    chip = CCSVMChip(system)
    chip.create_process(WORKLOAD)
    if threads is None:
        threads = min(system.mttop.total_thread_contexts, size)

    a_rows = chip.malloc(size * 8)
    b_rows = chip.malloc(size * 8)
    c_rows = chip.malloc(size * 8)
    scratch = chip.malloc(threads * size * 8)
    done = chip.malloc(threads * 8)
    _build_input_lists(a_entries, size, a_rows, chip.write_word, chip.malloc)
    _build_input_lists(b_entries, size, b_rows, chip.write_word, chip.malloc)
    for row in range(size):
        chip.write_word(word_addr(c_rows, row), 0)
    for t in range(threads):
        chip.write_word(word_addr(done, t), 0)

    def host():
        yield CreateMThread(sparse_xthreads_kernel,
                            (a_rows, b_rows, c_rows, scratch, size, threads, done),
                            0, threads - 1)
        yield WaitCond(done, 0, threads - 1)

    result = chip.run(host())
    produced = _read_result_lists(size, c_rows, chip.read_word)
    return WorkloadResult(system="ccsvm_xthreads", workload=WORKLOAD,
                          params={"size": size, "density": density,
                                  "threads": threads},
                          time_ps=result.time_ps,
                          dram_accesses=result.dram_accesses,
                          verified=produced == expected,
                          extra={"mttop_mallocs":
                                 result.stats.get("xthreads.mttop_mallocs")},
                          counters=result.stats.to_dict())


# --------------------------------------------------------------------------- #
# Single AMD CPU core
# --------------------------------------------------------------------------- #
def run_cpu(size: int = 32, density: float = 0.05, seed: int = 23,
            config: Optional[APUSystemConfig] = None) -> WorkloadResult:
    """Sequential sparse MM on one APU CPU core (ordinary ``malloc``)."""
    apu = AMDAPU(config)
    a_entries = sparse_matrix(size, density, seed)
    b_entries = sparse_matrix(size, density, seed + 1)
    expected = reference.sparse_matmul(a_entries, b_entries, size)

    a_rows = apu.allocate(size * 8)
    b_rows = apu.allocate(size * 8)
    c_rows = apu.allocate(size * 8)
    scratch = apu.allocate(size * 8)
    _build_input_lists(a_entries, size, a_rows, apu.memory.write_word, apu.allocate)
    _build_input_lists(b_entries, size, b_rows, apu.memory.write_word, apu.allocate)

    def program():
        yield from sparse_row_kernel(0, (a_rows, b_rows, c_rows, scratch, size, 1))

    run = apu.run_on_cpu(program())
    produced = _read_result_lists(size, c_rows, apu.memory.read_word)
    return WorkloadResult(system="apu_cpu", workload=WORKLOAD,
                          params={"size": size, "density": density},
                          time_ps=run.time_ps,
                          dram_accesses=apu.dram_accesses,
                          verified=produced == expected)


# --------------------------------------------------------------------------- #
# Registry variants — uniform signature run(config, *, seed, **params)
# --------------------------------------------------------------------------- #
@register_variant(WORKLOAD, "cpu",
                  description="sequential sparse multiply on one APU CPU core")
def cpu_variant(config: Optional[APUSystemConfig] = None, *, seed: int = 23,
                size: int = 32, density: float = 0.05) -> WorkloadResult:
    return run_cpu(size=size, density=density, seed=seed, config=config)


@register_variant(WORKLOAD, "ccsvm",
                  description="xthreads with per-non-zero mttop_malloc "
                              "(no OpenCL version, as in the paper)")
def ccsvm_variant(config: Optional[CCSVMSystemConfig] = None, *, seed: int = 23,
                  size: int = 32, density: float = 0.05) -> WorkloadResult:
    return run_ccsvm(size=size, density=density, seed=seed, config=config)
