"""Barnes-Hut n-body simulation (Figure 7).

The paper ports the pthreads Barnes-Hut benchmark to xthreads to show that
CCSVM makes *pointer-chasing, recursive, frequently-toggling* code viable on
a CPU/MTTOP chip: every timestep interleaves a sequential phase (the CPU
builds the octree) with a parallel phase (the MTTOP threads traverse the
tree to compute forces), and on a loosely-coupled chip the cost of switching
between those phases kills any benefit.

The implementation uses fixed-point integer arithmetic (the simulator's
memory holds 64-bit words) and a monopole force approximation without a
square root; physical accuracy is irrelevant here — what the experiment
measures is the memory behaviour of building and traversing a pointer-based
octree shared between core types.

Variants: CCSVM/xthreads, a single APU CPU core, and a 4-thread pthreads run
on the APU (there is no OpenCL version, exactly as in the paper).
Correctness is checked by comparing every variant's final body positions
against a functional execution of the same algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baseline.apu import AMDAPU
from repro.config import APUSystemConfig, CCSVMSystemConfig, ccsvm_system
from repro.core.chip import CCSVMChip
from repro.core.xthreads.api import CreateMThread, WaitCond, mttop_signal
from repro.cores.isa import Compute, Load, Malloc, Store, word_addr
from repro.workloads.base import WorkloadResult
from repro.workloads.generators import Body, nbody_bodies
from repro.workloads.registry import register_variant

WORKLOAD = "barnes_hut"

#: Side length of the (cubic) simulation space in fixed-point units.
SPACE = 1 << 16

#: Octree node layout (word offsets within a node).
F_CENTER_X, F_CENTER_Y, F_CENTER_Z = 0, 1, 2
F_HALF = 3
F_MASS = 4
F_SUM_X, F_SUM_Y, F_SUM_Z = 5, 6, 7
F_CHILD0 = 8          # eight children: offsets 8..15
F_BODY = 16           # body index + 1 when the node is a single-body leaf
F_COUNT = 17          # bodies contained in the subtree
NODE_WORDS = 18

#: Maximum insertion depth; below this, bodies simply accumulate in a node.
MAX_DEPTH = 12

#: Integration divisor applied to accelerations when updating positions.
STEP_DIVISOR = 1 << 8


# --------------------------------------------------------------------------- #
# Body array layout helpers
# --------------------------------------------------------------------------- #
def _body_arrays(count: int, allocate) -> Dict[str, int]:
    """Allocate the structure-of-arrays body storage."""
    names = ("pos_x", "pos_y", "pos_z", "mass", "acc_x", "acc_y", "acc_z")
    return {name: allocate(count * 8) for name in names}


def _octant(x: int, y: int, z: int, cx: int, cy: int, cz: int) -> int:
    """Index (0..7) of the child octant containing ``(x, y, z)``."""
    return (1 if x >= cx else 0) | (2 if y >= cy else 0) | (4 if z >= cz else 0)


def _child_center(cx: int, cy: int, cz: int, half: int, octant: int) -> tuple:
    quarter = max(1, half // 2)
    return (cx + quarter if octant & 1 else cx - quarter,
            cy + quarter if octant & 2 else cy - quarter,
            cz + quarter if octant & 4 else cz - quarter,
            quarter)


# --------------------------------------------------------------------------- #
# Generator phases (shared by every variant)
# --------------------------------------------------------------------------- #
def load_bodies_phase(arrays: Dict[str, int], bodies: Sequence[Body]) -> object:
    """Write the initial body state into memory (host, sequential)."""
    for index, body in enumerate(bodies):
        yield Store(word_addr(arrays["pos_x"], index), body.x)
        yield Store(word_addr(arrays["pos_y"], index), body.y)
        yield Store(word_addr(arrays["pos_z"], index), body.z)
        yield Store(word_addr(arrays["mass"], index), body.mass)
        yield Store(word_addr(arrays["acc_x"], index), 0)
        yield Store(word_addr(arrays["acc_y"], index), 0)
        yield Store(word_addr(arrays["acc_z"], index), 0)


def build_tree_phase(arrays: Dict[str, int], count: int, pool_base: int,
                     pool_cursor: int) -> object:
    """Sequential octree construction (the CPU phase of each timestep).

    Nodes are allocated from a pre-allocated pool by bumping the cursor word
    at ``pool_cursor``; the root is always the pool's first node.  Yields
    the loads/stores a pointer-based builder performs.  The root node's
    address is left in the cursor word's neighbour? — no: the root is
    ``pool_base`` by construction, which every force thread knows.
    """
    def node_addr(index: int) -> int:
        return pool_base + index * NODE_WORDS * 8

    # Reset the pool cursor and initialise the root node.
    yield Store(pool_cursor, 1)
    root = node_addr(0)
    for offset in range(NODE_WORDS):
        yield Store(root + offset * 8, 0)
    yield Store(root + F_CENTER_X * 8, SPACE // 2)
    yield Store(root + F_CENTER_Y * 8, SPACE // 2)
    yield Store(root + F_CENTER_Z * 8, SPACE // 2)
    yield Store(root + F_HALF * 8, SPACE // 2)

    for body_index in range(count):
        x = yield Load(word_addr(arrays["pos_x"], body_index))
        y = yield Load(word_addr(arrays["pos_y"], body_index))
        z = yield Load(word_addr(arrays["pos_z"], body_index))
        mass = yield Load(word_addr(arrays["mass"], body_index))

        node = root
        depth = 0
        while True:
            count_before = yield Load(node + F_COUNT * 8)
            node_mass = yield Load(node + F_MASS * 8)
            sum_x = yield Load(node + F_SUM_X * 8)
            sum_y = yield Load(node + F_SUM_Y * 8)
            sum_z = yield Load(node + F_SUM_Z * 8)
            yield Store(node + F_COUNT * 8, count_before + 1)
            yield Store(node + F_MASS * 8, node_mass + mass)
            yield Store(node + F_SUM_X * 8, sum_x + mass * x)
            yield Store(node + F_SUM_Y * 8, sum_y + mass * y)
            yield Store(node + F_SUM_Z * 8, sum_z + mass * z)
            yield Compute(6)

            if count_before == 0:
                yield Store(node + F_BODY * 8, body_index + 1)
                break
            if depth >= MAX_DEPTH:
                # Depth cap: let the node aggregate several bodies.
                break

            cx = yield Load(node + F_CENTER_X * 8)
            cy = yield Load(node + F_CENTER_Y * 8)
            cz = yield Load(node + F_CENTER_Z * 8)
            half = yield Load(node + F_HALF * 8)

            if count_before == 1:
                # The node was a single-body leaf: push its body down first.
                existing = (yield Load(node + F_BODY * 8)) - 1
                yield Store(node + F_BODY * 8, 0)
                ex = yield Load(word_addr(arrays["pos_x"], existing))
                ey = yield Load(word_addr(arrays["pos_y"], existing))
                ez = yield Load(word_addr(arrays["pos_z"], existing))
                emass = yield Load(word_addr(arrays["mass"], existing))
                octant = _octant(ex, ey, ez, cx, cy, cz)
                child = yield Load(node + (F_CHILD0 + octant) * 8)
                if child == 0:
                    cursor = yield Load(pool_cursor)
                    yield Store(pool_cursor, cursor + 1)
                    child = node_addr(cursor)
                    ncx, ncy, ncz, nhalf = _child_center(cx, cy, cz, half, octant)
                    for offset in range(NODE_WORDS):
                        yield Store(child + offset * 8, 0)
                    yield Store(child + F_CENTER_X * 8, ncx)
                    yield Store(child + F_CENTER_Y * 8, ncy)
                    yield Store(child + F_CENTER_Z * 8, ncz)
                    yield Store(child + F_HALF * 8, nhalf)
                    yield Store(node + (F_CHILD0 + octant) * 8, child)
                ccount = yield Load(child + F_COUNT * 8)
                cmass = yield Load(child + F_MASS * 8)
                csx = yield Load(child + F_SUM_X * 8)
                csy = yield Load(child + F_SUM_Y * 8)
                csz = yield Load(child + F_SUM_Z * 8)
                yield Store(child + F_COUNT * 8, ccount + 1)
                yield Store(child + F_MASS * 8, cmass + emass)
                yield Store(child + F_SUM_X * 8, csx + emass * ex)
                yield Store(child + F_SUM_Y * 8, csy + emass * ey)
                yield Store(child + F_SUM_Z * 8, csz + emass * ez)
                if ccount == 0:
                    yield Store(child + F_BODY * 8, existing + 1)
                yield Compute(8)

            # Now descend with the new body.
            octant = _octant(x, y, z, cx, cy, cz)
            child = yield Load(node + (F_CHILD0 + octant) * 8)
            if child == 0:
                cursor = yield Load(pool_cursor)
                yield Store(pool_cursor, cursor + 1)
                child = node_addr(cursor)
                ncx, ncy, ncz, nhalf = _child_center(cx, cy, cz, half, octant)
                for offset in range(NODE_WORDS):
                    yield Store(child + offset * 8, 0)
                yield Store(child + F_CENTER_X * 8, ncx)
                yield Store(child + F_CENTER_Y * 8, ncy)
                yield Store(child + F_CENTER_Z * 8, ncz)
                yield Store(child + F_HALF * 8, nhalf)
                yield Store(node + (F_CHILD0 + octant) * 8, child)
            node = child
            depth += 1


def force_phase_kernel(tid: int, args) -> object:
    """Compute accelerations for bodies ``tid, tid+stride, ...``.

    A pointer-chasing traversal of the octree with an explicit stack and the
    Barnes-Hut opening criterion (theta = 0.5); the force uses a monopole
    ``m / d^2`` approximation in integer arithmetic.
    """
    arrays, root, count, stride = args
    for body_index in range(tid, count, stride):
        x = yield Load(word_addr(arrays["pos_x"], body_index))
        y = yield Load(word_addr(arrays["pos_y"], body_index))
        z = yield Load(word_addr(arrays["pos_z"], body_index))
        acc_x = acc_y = acc_z = 0
        stack = [root]
        while stack:
            node = stack.pop()
            node_mass = yield Load(node + F_MASS * 8)
            if node_mass == 0:
                continue
            node_count = yield Load(node + F_COUNT * 8)
            body_tag = yield Load(node + F_BODY * 8)
            if node_count == 1 and body_tag - 1 == body_index:
                continue
            half = yield Load(node + F_HALF * 8)
            sum_x = yield Load(node + F_SUM_X * 8)
            sum_y = yield Load(node + F_SUM_Y * 8)
            sum_z = yield Load(node + F_SUM_Z * 8)
            com_x = sum_x // node_mass
            com_y = sum_y // node_mass
            com_z = sum_z // node_mass
            dx, dy, dz = com_x - x, com_y - y, com_z - z
            dist2 = dx * dx + dy * dy + dz * dz + 1
            yield Compute(12)
            # Open the node unless it is a leaf or far enough (theta = 0.5,
            # i.e. open when (2*half)^2 >= 0.25 * dist2).
            if node_count == 1 or 16 * half * half < dist2:
                acc_x += node_mass * dx // dist2
                acc_y += node_mass * dy // dist2
                acc_z += node_mass * dz // dist2
                yield Compute(9)
            else:
                for child_index in range(8):
                    child = yield Load(node + (F_CHILD0 + child_index) * 8)
                    if child != 0:
                        stack.append(child)
        yield Store(word_addr(arrays["acc_x"], body_index), acc_x)
        yield Store(word_addr(arrays["acc_y"], body_index), acc_y)
        yield Store(word_addr(arrays["acc_z"], body_index), acc_z)


def force_phase_xthreads_kernel(tid: int, args) -> object:
    """xthreads wrapper around the force phase: compute, then signal."""
    arrays, root, count, stride, done = args
    yield from force_phase_kernel(tid, (arrays, root, count, stride))
    yield from mttop_signal(done, tid)


def update_phase(arrays: Dict[str, int], count: int) -> object:
    """Sequential position update (the CPU phase closing each timestep)."""
    for body_index in range(count):
        for axis in ("x", "y", "z"):
            position = yield Load(word_addr(arrays[f"pos_{axis}"], body_index))
            acceleration = yield Load(word_addr(arrays[f"acc_{axis}"], body_index))
            yield Compute(3)
            new_position = position + acceleration // STEP_DIVISOR
            new_position = max(0, min(SPACE - 1, new_position))
            yield Store(word_addr(arrays[f"pos_{axis}"], body_index), new_position)


# --------------------------------------------------------------------------- #
# Functional reference executor
# --------------------------------------------------------------------------- #
class _FunctionalMemory:
    """Zero-cost executor used to produce the golden final positions."""

    def __init__(self) -> None:
        self.words: Dict[int, int] = {}
        self._next = 0x1000

    def allocate(self, size: int) -> int:
        address = self._next
        self._next += size + (-size % 8)
        return address

    def run(self, program) -> None:
        from repro.cores.interpreter import ThreadContext, OpOutcome
        from repro.cores.isa import Load as _Load, Store as _Store

        context = ThreadContext(tid=0, program=program)
        while True:
            operation = context.next_operation()
            if operation is None:
                return
            if isinstance(operation, _Load):
                value = self.words.get(operation.vaddr & ~7, 0)
                context.complete(operation, OpOutcome(value=value))
            elif isinstance(operation, _Store):
                self.words[operation.vaddr & ~7] = operation.value
                context.complete(operation, OpOutcome())
            else:
                context.complete(operation, OpOutcome())

    def read_array(self, base: int, count: int) -> List[int]:
        return [self.words.get((base + 8 * i) & ~7, 0) for i in range(count)]


def reference_positions(bodies: Sequence[Body], timesteps: int,
                        threads: int = 1) -> List[int]:
    """Golden final positions (x, y, z interleaved per body)."""
    memory = _FunctionalMemory()
    count = len(bodies)
    arrays = _body_arrays(count, memory.allocate)
    pool_base = memory.allocate((count * (MAX_DEPTH + 2) + 8) * NODE_WORDS * 8)
    pool_cursor = memory.allocate(8)
    memory.run(load_bodies_phase(arrays, bodies))
    for _ in range(timesteps):
        memory.run(build_tree_phase(arrays, count, pool_base, pool_cursor))
        for tid in range(threads):
            memory.run(force_phase_kernel(tid, (arrays, pool_base, count, threads)))
        memory.run(update_phase(arrays, count))
    out: List[int] = []
    for index in range(count):
        out.append(memory.read_array(word_addr(arrays["pos_x"], index), 1)[0])
        out.append(memory.read_array(word_addr(arrays["pos_y"], index), 1)[0])
        out.append(memory.read_array(word_addr(arrays["pos_z"], index), 1)[0])
    return out


def _collect_positions(arrays: Dict[str, int], count: int, read_word) -> List[int]:
    out: List[int] = []
    for index in range(count):
        out.append(read_word(word_addr(arrays["pos_x"], index)))
        out.append(read_word(word_addr(arrays["pos_y"], index)))
        out.append(read_word(word_addr(arrays["pos_z"], index)))
    return out


def _pool_words(count: int) -> int:
    return (count * (MAX_DEPTH + 2) + 8) * NODE_WORDS


# --------------------------------------------------------------------------- #
# CCSVM / xthreads
# --------------------------------------------------------------------------- #
def run_ccsvm(bodies_count: int = 64, timesteps: int = 2, seed: int = 5,
              config: Optional[CCSVMSystemConfig] = None,
              threads: Optional[int] = None) -> WorkloadResult:
    """Barnes-Hut with xthreads: CPU builds the tree, MTTOPs compute forces."""
    system = config if config is not None else ccsvm_system()
    bodies = nbody_bodies(bodies_count, seed)
    if threads is None:
        threads = min(system.mttop.total_thread_contexts, bodies_count)
    expected = reference_positions(bodies, timesteps, threads)

    chip = CCSVMChip(system)
    chip.create_process(WORKLOAD)
    arrays = _body_arrays(bodies_count, chip.malloc)
    pool_base = chip.malloc(_pool_words(bodies_count) * 8)
    pool_cursor = chip.malloc(8)
    done = chip.malloc(threads * 8)
    for t in range(threads):
        chip.write_word(word_addr(done, t), 0)

    def host():
        yield from load_bodies_phase(arrays, bodies)
        for _ in range(timesteps):
            yield from build_tree_phase(arrays, bodies_count, pool_base, pool_cursor)
            for t in range(threads):
                yield Store(word_addr(done, t), 0)
            yield CreateMThread(force_phase_xthreads_kernel,
                                (arrays, pool_base, bodies_count, threads, done),
                                0, threads - 1)
            yield WaitCond(done, 0, threads - 1)
            yield from update_phase(arrays, bodies_count)

    result = chip.run(host())
    produced = _collect_positions(arrays, bodies_count, chip.read_word)
    return WorkloadResult(system="ccsvm_xthreads", workload=WORKLOAD,
                          params={"bodies": bodies_count, "timesteps": timesteps,
                                  "threads": threads},
                          time_ps=result.time_ps,
                          dram_accesses=result.dram_accesses,
                          verified=produced == expected,
                          counters=result.stats.to_dict())


# --------------------------------------------------------------------------- #
# Single AMD CPU core
# --------------------------------------------------------------------------- #
def run_cpu(bodies_count: int = 64, timesteps: int = 2, seed: int = 5,
            config: Optional[APUSystemConfig] = None) -> WorkloadResult:
    """Sequential Barnes-Hut on one APU CPU core."""
    apu = AMDAPU(config)
    bodies = nbody_bodies(bodies_count, seed)
    expected = reference_positions(bodies, timesteps, threads=1)

    arrays = _body_arrays(bodies_count, apu.allocate)
    pool_base = apu.allocate(_pool_words(bodies_count) * 8)
    pool_cursor = apu.allocate(8)

    def program():
        yield from load_bodies_phase(arrays, bodies)
        for _ in range(timesteps):
            yield from build_tree_phase(arrays, bodies_count, pool_base, pool_cursor)
            yield from force_phase_kernel(0, (arrays, pool_base, bodies_count, 1))
            yield from update_phase(arrays, bodies_count)

    run = apu.run_on_cpu(program())
    produced = _collect_positions(arrays, bodies_count, apu.memory.read_word)
    return WorkloadResult(system="apu_cpu", workload=WORKLOAD,
                          params={"bodies": bodies_count, "timesteps": timesteps},
                          time_ps=run.time_ps,
                          dram_accesses=apu.dram_accesses,
                          verified=produced == expected)


# --------------------------------------------------------------------------- #
# pthreads on the APU's four CPU cores
# --------------------------------------------------------------------------- #
def run_pthreads(bodies_count: int = 64, timesteps: int = 2, seed: int = 5,
                 num_threads: int = 4,
                 config: Optional[APUSystemConfig] = None) -> WorkloadResult:
    """The pthreads baseline of Figure 7: force phase across 4 CPU threads."""
    apu = AMDAPU(config)
    bodies = nbody_bodies(bodies_count, seed)
    expected = reference_positions(bodies, timesteps, threads=num_threads)

    machine = apu.pthreads(num_threads)
    arrays = _body_arrays(bodies_count, apu.allocate)
    pool_base = apu.allocate(_pool_words(bodies_count) * 8)
    pool_cursor = apu.allocate(8)

    machine.run_sequential(load_bodies_phase(arrays, bodies))
    for _ in range(timesteps):
        machine.run_sequential(
            build_tree_phase(arrays, bodies_count, pool_base, pool_cursor))
        machine.run_parallel([
            force_phase_kernel(tid, (arrays, pool_base, bodies_count,
                                     machine.num_threads))
            for tid in range(machine.num_threads)
        ])
        machine.run_sequential(update_phase(arrays, bodies_count))
    machine.join()

    produced = _collect_positions(arrays, bodies_count, apu.memory.read_word)
    return WorkloadResult(system="apu_pthreads", workload=WORKLOAD,
                          params={"bodies": bodies_count, "timesteps": timesteps,
                                  "threads": machine.num_threads},
                          time_ps=machine.total_time_ps,
                          dram_accesses=apu.dram_accesses,
                          verified=produced == expected)


# --------------------------------------------------------------------------- #
# Registry variants — uniform signature run(config, *, seed, **params)
# --------------------------------------------------------------------------- #
@register_variant(WORKLOAD, "cpu",
                  description="sequential tree build + force phase on one "
                              "APU CPU core")
def cpu_variant(config: Optional[APUSystemConfig] = None, *, seed: int = 5,
                bodies: int = 64, timesteps: int = 2) -> WorkloadResult:
    return run_cpu(bodies_count=bodies, timesteps=timesteps, seed=seed,
                   config=config)


@register_variant(WORKLOAD, "pthreads",
                  description="force phase across the APU's four CPU cores")
def pthreads_variant(config: Optional[APUSystemConfig] = None, *, seed: int = 5,
                     bodies: int = 64, timesteps: int = 2) -> WorkloadResult:
    return run_pthreads(bodies_count=bodies, timesteps=timesteps, seed=seed,
                        config=config)


@register_variant(WORKLOAD, "ccsvm",
                  description="xthreads force phase on the CCSVM chip "
                              "(no OpenCL version, as in the paper)")
def ccsvm_variant(config: Optional[CCSVMSystemConfig] = None, *, seed: int = 5,
                  bodies: int = 64, timesteps: int = 2) -> WorkloadResult:
    return run_ccsvm(bodies_count=bodies, timesteps=timesteps, seed=seed,
                     config=config)
