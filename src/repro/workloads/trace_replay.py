"""Replay a recorded address trace under any CCSVM hierarchy shape.

The :mod:`repro.mem.trace` machinery records the complete operation stream
of one (workload, params, seed) run; this module turns a saved trace back
into a registered workload, so the standard sweep tooling can replay it
across hierarchy presets without re-deriving the workload::

    python - <<'PY'
    from repro.workloads.trace_replay import capture_trace
    capture_trace("vector_add", seed=1, size=64, path="va64.trace.json")
    PY
    python -m repro sweep trace_replay \
        --system ccsvm,ccsvm-l3,ccsvm-no-tlb --grid trace=va64.trace.json

Replay re-executes Malloc live (the allocator is deterministic, so the
recorded addresses come back unchanged on any hierarchy shape) and keeps
the real synchronisation operations (WaitValue, WaitCond, barriers), so a
replayed run is a full timing simulation — only the workload's *compute*
is gone, replaced by the recorded memory behaviour.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import APUSystemConfig, CCSVMSystemConfig, ccsvm_system
from repro.core.chip import CCSVMChip
from repro.mem.trace import Trace, TraceError, capture, replay_host_program
from repro.workloads.base import WorkloadResult
from repro.workloads.registry import get_variant, register_variant

WORKLOAD = "trace_replay"


def capture_trace(workload: str, *, seed: Optional[int] = None,
                  path: Optional[str] = None, **params) -> Trace:
    """Run ``workload``'s ``ccsvm`` variant once, recording its trace.

    The traced run is bit-for-bit identical to an untraced one; its
    headline results are kept in ``trace.meta`` so replays can report
    against them.  The trace is also written to ``path`` when given.
    """
    variant = get_variant(workload, "ccsvm")
    kwargs = dict(params)
    if seed is not None:
        kwargs["seed"] = seed
    with capture(workload=workload, params=params,
                 seed=seed if seed is not None else 0,
                 preset="ccsvm") as recorder:
        result = variant.func(None, **kwargs)
    trace = recorder.trace
    trace.meta.update(time_ps=result.time_ps,
                      dram_accesses=result.dram_accesses,
                      verified=result.verified)
    if path is not None:
        trace.save(path)
    return trace


def run_replay(trace: Union[Trace, str],
               config: Optional[CCSVMSystemConfig] = None) -> WorkloadResult:
    """Replay a trace (object or file path) on a fresh CCSVM chip."""
    loaded = Trace.load(trace) if isinstance(trace, str) else trace
    system = config if config is not None else ccsvm_system()
    chip = CCSVMChip(system)
    chip.create_process(f"replay_{loaded.workload or 'trace'}")
    result = chip.run(replay_host_program(loaded))
    # Stores replay their recorded values, so the replayed run's memory
    # contents equal the capture run's — which the capture verified.
    return WorkloadResult(system="ccsvm_replay", workload=WORKLOAD,
                          params={"workload": loaded.workload,
                                  **loaded.params},
                          time_ps=result.time_ps,
                          dram_accesses=result.dram_accesses,
                          verified=bool(loaded.meta.get("verified", True)),
                          counters=result.stats.to_dict())


def run_replay_flat(trace: Union[Trace, str],
                    config: Optional[APUSystemConfig] = None) -> WorkloadResult:
    """Replay a host-only trace on one APU baseline CPU core (full sim).

    The recorded stream embeds its captured addresses, so the baseline
    core executes the identical reference sequence the CCSVM capture
    produced — which is what makes the APU hierarchy presets comparable
    points in a trace-driven shape sweep (and gives the cache-only
    replayer its full-simulation comparator on ``apu-shared-l2``).
    """
    from repro.baseline.apu import AMDAPU

    loaded = Trace.load(trace) if isinstance(trace, str) else trace
    if loaded.tasks:
        raise TraceError("the APU baseline replays host-only traces "
                         "(device streams have no APU CPU analog)")
    if len(loaded.hosts) != 1:
        raise TraceError(f"APU replay needs a single-host trace, got "
                         f"{len(loaded.hosts)} host streams")
    machine = AMDAPU(config)

    def host():
        for operation in loaded.host_ops:
            yield operation

    result = machine.run_on_cpu(host())
    return WorkloadResult(system="apu_replay", workload=WORKLOAD,
                          params={"workload": loaded.workload,
                                  **loaded.params},
                          time_ps=result.time_ps,
                          dram_accesses=machine.dram.total_accesses,
                          verified=bool(loaded.meta.get("verified", True)),
                          counters=machine.stats.to_dict())


# --------------------------------------------------------------------------- #
# Registry variants — uniform signature run(config, *, seed, **params)
# --------------------------------------------------------------------------- #
@register_variant(WORKLOAD, "ccsvm",
                  description="replay a recorded address trace on any CCSVM "
                              "hierarchy shape")
def ccsvm_variant(config: Optional[CCSVMSystemConfig] = None, *,
                  seed: int = 0,
                  trace: Union[Trace, str] = "trace.json") -> WorkloadResult:
    # ``seed`` is part of the uniform variant signature; the trace already
    # pins the captured run's seed.
    return run_replay(trace, config=config)


@register_variant(WORKLOAD, "pthreads",
                  description="replay a recorded host-only trace on one APU "
                              "baseline CPU core")
def pthreads_variant(config: Optional[APUSystemConfig] = None, *,
                     seed: int = 0,
                     trace: Union[Trace, str] = "trace.json") -> WorkloadResult:
    return run_replay_flat(trace, config=config)
