"""Cache-only trace replay as a registered workload, plus ``mem_stream``.

Two workloads live here:

* ``cache_replay`` — evaluate a hierarchy shape by walking a captured
  trace through :mod:`repro.mem.replay`'s bare memory system (no cores,
  no sim engine, no scheduler).  The ``ccsvm`` variant covers every
  CCSVM-family preset (``ccsvm``, ``ccsvm-l3``, ``ccsvm-no-tlb``, sizes,
  replacement policies); the ``pthreads`` variant covers the APU presets
  (``apu-shared-l2``).  Counters equal a full ``trace_replay`` simulation
  of the same stream for host-only traces, at a fraction of the cost —
  which is what makes fixed-workload DSE sweeps near-free::

      python - <<'PY'
      from repro.workloads.trace_replay import capture_trace
      capture_trace("mem_stream", seed=1, path="ms.trace.json", ops=4000)
      PY
      python -m repro sweep cache_replay \
          --system ccsvm,ccsvm-l3,ccsvm-no-tlb --grid trace=ms.trace.json

* ``mem_stream`` — a deterministic single-host mixed reference stream
  (loads, stores, vectors, atomics, malloc/free) parameterized by op
  count, footprint and seed.  It exists to be *captured*: because it
  needs no device threads and no spin synchronisation, its traces replay
  counter-exactly on every shape, making it the equivalence gate's (and
  CI's) canonical capture subject.  It runs on both machines, so the same
  stream also byte-compares the APU presets.
"""

from __future__ import annotations

import random
from typing import Optional, Union

from repro.config import APUSystemConfig, CCSVMSystemConfig
from repro.core.chip import CCSVMChip
from repro.cores.isa import (
    AtomicAdd,
    AtomicCAS,
    Compute,
    Free,
    Load,
    LoadVector,
    Malloc,
    Store,
    StoreVector,
)
from repro.mem.replay import (
    load_trace_cached,
    replay_trace,
    replay_trace_flat,
)
from repro.mem.trace import Trace
from repro.workloads.base import WorkloadResult
from repro.workloads.registry import register_variant

WORKLOAD = "cache_replay"
STREAM_WORKLOAD = "mem_stream"

_VECTOR_WIDTH = 16


def _stream_program(seed: int, ops: int, words: int, failures: list,
                    locality: float = 0.9, atomics: float = 0.10):
    """The deterministic mem_stream host program.

    Pure function of ``(seed, ops, words, locality)``: the identical
    operation sequence is produced on every machine (addresses are
    relative to the single ``Malloc``'s result, which flows back through
    the generator).  Loads are checked against a software shadow;
    mismatches are appended to ``failures``.

    Addresses follow a cursor that usually advances to the next word and
    occasionally (probability ``1 - locality``) jumps to a random one —
    the sequential-sweep-with-reuse shape of the paper's kernels.
    ``locality=0`` gives a uniformly random stream.  ``atomics`` is the
    fraction of ops that are atomic read-modify-writes (they serialise
    the batched engines, so benchmarks dial them down; the equivalence
    gate keeps the default).
    """

    def host():
        rng = random.Random(seed)
        shadow = {}
        cursor = 0
        # Cumulative mix thresholds: atomics (3:2 add:cas) take their
        # fraction, vectors and compute are fixed, loads:stores split the
        # rest 9:7.
        p_vec_load, p_vec_store, p_compute = 0.05, 0.04, 0.01
        scalar = 1.0 - atomics - p_vec_load - p_vec_store - p_compute
        t_load = scalar * 9 / 16
        t_store = t_load + scalar * 7 / 16
        t_add = t_store + atomics * 0.6
        t_cas = t_store + atomics
        t_vec_load = t_cas + p_vec_load
        t_vec_store = t_vec_load + p_vec_store
        base = yield Malloc(8 * words)

        def addr():
            nonlocal cursor
            if rng.random() < locality:
                cursor = (cursor + 1) % words
            else:
                cursor = rng.randrange(words)
            return base + 8 * cursor

        # Warm a slice of the footprint with vector stores.
        for start in range(0, min(words, 256), _VECTOR_WIDTH):
            vaddrs = tuple(base + 8 * (start + k)
                           for k in range(_VECTOR_WIDTH))
            values = tuple((start + k) * 3 for k in range(_VECTOR_WIDTH))
            yield StoreVector(vaddrs, values)
            shadow.update(zip(vaddrs, values))

        for _ in range(ops):
            r = rng.random()
            if r < t_load:
                a = addr()
                value = yield Load(a)
                if value != shadow.get(a, 0):
                    failures.append((a, value, shadow.get(a, 0)))
            elif r < t_store:
                a = addr()
                value = rng.randrange(1 << 32)
                yield Store(a, value)
                shadow[a] = value
            elif r < t_add:
                a = addr()
                old = yield AtomicAdd(a, 1)
                if old != shadow.get(a, 0):
                    failures.append((a, old, shadow.get(a, 0)))
                shadow[a] = shadow.get(a, 0) + 1
            elif r < t_cas:
                a = addr()
                old = yield AtomicCAS(a, shadow.get(a, 0), 7)
                if old != shadow.get(a, 0):
                    failures.append((a, old, shadow.get(a, 0)))
                shadow[a] = 7
            elif r < t_vec_load:
                vaddrs = tuple(addr() for _ in range(_VECTOR_WIDTH))
                values = yield LoadVector(vaddrs)
                for a, value in zip(vaddrs, values):
                    if value != shadow.get(a, 0):
                        failures.append((a, value, shadow.get(a, 0)))
            elif r < t_vec_store:
                vaddrs = tuple(addr() for _ in range(_VECTOR_WIDTH))
                values = tuple(rng.randrange(1 << 32)
                               for _ in range(_VECTOR_WIDTH))
                yield StoreVector(vaddrs, values)
                # Later elements overwrite earlier duplicates, like the
                # machine's in-order store sequence.
                shadow.update(zip(vaddrs, values))
            else:
                yield Compute(3)

        scratch = yield Malloc(64)
        yield Store(scratch, 1)
        yield Free(scratch)

    return host


@register_variant(STREAM_WORKLOAD, "ccsvm",
                  description="deterministic mixed reference stream on one "
                              "CCSVM CPU core (the capture subject for "
                              "cache-only replay)")
def mem_stream_ccsvm(config: Optional[CCSVMSystemConfig] = None, *,
                     seed: int = 0, ops: int = 2000, words: int = 1024,
                     locality: float = 0.9,
                     atomics: float = 0.10) -> WorkloadResult:
    failures: list = []
    chip = CCSVMChip(config)
    result = chip.run(_stream_program(seed, ops, words, failures,
                                      locality, atomics)())
    return WorkloadResult(system="ccsvm", workload=STREAM_WORKLOAD,
                          params={"ops": ops, "words": words,
                                  "locality": locality,
                                  "atomics": atomics},
                          time_ps=result.time_ps,
                          dram_accesses=result.dram_accesses,
                          verified=not failures,
                          counters=result.stats.to_dict())


@register_variant(STREAM_WORKLOAD, "pthreads",
                  description="the same deterministic reference stream on one "
                              "APU baseline CPU core")
def mem_stream_pthreads(config: Optional[APUSystemConfig] = None, *,
                        seed: int = 0, ops: int = 2000, words: int = 1024,
                        locality: float = 0.9,
                        atomics: float = 0.10) -> WorkloadResult:
    from repro.baseline.apu import AMDAPU

    failures: list = []
    machine = AMDAPU(config)
    result = machine.run_on_cpu(_stream_program(seed, ops, words, failures,
                                                locality, atomics)())
    return WorkloadResult(system="apu_pthreads", workload=STREAM_WORKLOAD,
                          params={"ops": ops, "words": words,
                                  "locality": locality,
                                  "atomics": atomics},
                          time_ps=result.time_ps,
                          dram_accesses=machine.dram.total_accesses,
                          verified=not failures,
                          counters=machine.stats.to_dict())


# --------------------------------------------------------------------------- #
# cache_replay — the near-free shape evaluator
# --------------------------------------------------------------------------- #
def _load(trace: Union[Trace, str]) -> Trace:
    # The path-keyed cache keeps one parsed (and compiled) trace across a
    # whole sweep/DSE run instead of re-parsing JSON per design point.
    return load_trace_cached(trace) if isinstance(trace, str) else trace


@register_variant(WORKLOAD, "ccsvm",
                  description="cache-only replay of a recorded trace through "
                              "a bare CCSVM hierarchy (no cores, no engine)")
def ccsvm_variant(config: Optional[CCSVMSystemConfig] = None, *,
                  seed: int = 0, trace: Union[Trace, str] = "trace.json",
                  engine: str = "batch") -> WorkloadResult:
    loaded = _load(trace)
    result = replay_trace(loaded, config, engine=engine)
    return WorkloadResult(system="ccsvm_cache_replay", workload=WORKLOAD,
                          params={"workload": loaded.workload,
                                  **loaded.params},
                          time_ps=result.time_ps,
                          dram_accesses=result.dram_accesses,
                          verified=bool(loaded.meta.get("verified", True)),
                          counters=result.stats.to_dict())


@register_variant(WORKLOAD, "pthreads",
                  description="cache-only replay of a recorded host-only "
                              "trace through the APU cache hierarchy")
def pthreads_variant(config: Optional[APUSystemConfig] = None, *,
                     seed: int = 0, trace: Union[Trace, str] = "trace.json",
                     engine: str = "batch") -> WorkloadResult:
    loaded = _load(trace)
    result = replay_trace_flat(loaded, config, engine=engine)
    return WorkloadResult(system="apu_cache_replay", workload=WORKLOAD,
                          params={"workload": loaded.workload,
                                  **loaded.params},
                          time_ps=result.time_ps,
                          dram_accesses=result.dram_accesses,
                          verified=bool(loaded.meta.get("verified", True)),
                          counters=result.stats.to_dict())
