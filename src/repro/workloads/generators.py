"""Deterministic input generation for the workloads.

Every generator takes an explicit seed so that the CCSVM run, the APU run
and the golden reference of one experiment point all operate on identical
inputs — the prerequisite for comparing their timing and DRAM traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Fixed-point scale used by the Barnes-Hut workload (positions, masses).
FIXED_POINT_SCALE = 1 << 10

#: "Infinite" distance used by the all-pairs-shortest-path workload.  Kept
#: well below 2**62 so additions of two infinities cannot overflow a word.
APSP_INFINITY = 1 << 30


def dense_matrix(size: int, seed: int, max_value: int = 9) -> List[int]:
    """A row-major ``size`` x ``size`` matrix of small non-negative ints."""
    rng = random.Random(seed)
    return [rng.randint(0, max_value) for _ in range(size * size)]


def vector(size: int, seed: int, max_value: int = 1000) -> List[int]:
    """A vector of ``size`` non-negative ints."""
    rng = random.Random(seed)
    return [rng.randint(0, max_value) for _ in range(size)]


def weighted_digraph(size: int, seed: int, edge_probability: float = 0.3,
                     max_weight: int = 20) -> List[int]:
    """A row-major adjacency matrix for the APSP workload.

    Entry ``(i, j)`` is the edge weight, ``APSP_INFINITY`` when there is no
    edge, and 0 on the diagonal.
    """
    rng = random.Random(seed)
    matrix = [APSP_INFINITY] * (size * size)
    for i in range(size):
        matrix[i * size + i] = 0
        for j in range(size):
            if i != j and rng.random() < edge_probability:
                matrix[i * size + j] = rng.randint(1, max_weight)
    return matrix


def sparse_matrix(size: int, density: float, seed: int,
                  max_value: int = 9) -> Dict[Tuple[int, int], int]:
    """A sparse ``size`` x ``size`` matrix as a ``{(row, col): value}`` dict.

    Values are non-zero; ``density`` is the expected fraction of non-zero
    entries.  Every row is guaranteed at least one non-zero element so
    linked-list row traversals always have work to do.
    """
    rng = random.Random(seed)
    entries: Dict[Tuple[int, int], int] = {}
    for row in range(size):
        for col in range(size):
            if rng.random() < density:
                entries[(row, col)] = rng.randint(1, max_value)
        if not any(r == row for r, _ in entries):
            entries[(row, rng.randrange(size))] = rng.randint(1, max_value)
    return entries


@dataclass(frozen=True)
class Body:
    """One Barnes-Hut body in fixed-point coordinates."""

    x: int
    y: int
    z: int
    mass: int


def nbody_bodies(count: int, seed: int, space: int = 1 << 16) -> List[Body]:
    """Random bodies in a cubic space of side ``space`` (fixed-point units)."""
    rng = random.Random(seed)
    bodies = []
    for _ in range(count):
        bodies.append(Body(x=rng.randrange(space), y=rng.randrange(space),
                           z=rng.randrange(space),
                           mass=rng.randint(1, 8) * FIXED_POINT_SCALE))
    return bodies
