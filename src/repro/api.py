"""``repro.api`` — compose scenarios out of workloads, systems and grids.

The paper's evaluation is a fixed grid of {workload} x {system} x {input
size}; this module makes that grid — and any other — *data* instead of
code.  A :class:`Scenario` names a workload from
:mod:`repro.workloads.registry`, a list of system presets from
:mod:`repro.systems`, a parameter grid, and optional dotted-path
configuration overrides, and expands to ordinary
:class:`~repro.harness.spec.SweepPoint` s, so any execution backend
(serial / process pool / distributed) and the point cache work unchanged::

    from repro.api import Scenario

    results = Scenario(workload="matmul",
                       systems=("cpu", "ccsvm"),
                       grid={"size": (8, 16, 32)},
                       overrides={"mttop.count": 4}).run(jobs=4)
    print(results.render())
    print(results.filter(system="ccsvm").columns("size", "time_ms").to_csv())

Scenario points carry only registry names and plain data — the workload
name, the system preset name, the parameter dict — never function objects
or configuration dataclasses, so they cross the distributed wire protocol
as names and their cache keys are function-identity-free.

Two execution shapes:

* **per-system** (the default): one point per (system, grid cell); each
  point contributes one row ``{workload, system, *params, time_ms, ...}``.
* **comparison** (``derive=...``): one point per grid cell; the point runs
  *every* system and a ``derive`` function (named by ``module:qualname``
  reference, so it too stays picklable-by-name) folds the per-system
  :class:`~repro.workloads.base.WorkloadResult` s into one wide row.  The
  paper's figures are comparison scenarios: one row per size with
  ``cpu_ms`` / ``apu_opencl_ms`` / ``ccsvm_xthreads_ms`` columns.

Results come back as a typed :class:`ResultSet` — ordered row groups plus
merged stats — with ``filter`` / ``columns`` / ``to_csv`` / ``to_json`` /
``render`` instead of the loose list-of-dicts / dict-of-lists shapes the
experiments used to thread around.
"""

from __future__ import annotations

import enum
import itertools
import json
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ReproError
from repro.experiments.report import render_table, rows_to_csv
from repro.harness.spec import (
    PointResult,
    SweepPoint,
    SweepSpec,
    point_func_ref,
    resolve_point_func,
)
from repro.config import apply_overrides, override_applies
from repro.systems import get_system, overrides_applicable, system_config
from repro.workloads.base import require_verified
from repro.workloads.registry import get_variant


class ScenarioError(ReproError):
    """A scenario was declared or executed inconsistently."""


# --------------------------------------------------------------------------- #
# Point functions — module level, addressed by reference string
# --------------------------------------------------------------------------- #
def _run_one(workload: str, system: str, params: Mapping[str, object],
             overrides: Mapping[str, object], seed: Optional[int],
             config: object):
    """Run one (workload, system) cell and return its WorkloadResult."""
    preset = get_system(system)
    if config is None:
        config = system_config(system, overrides or None)
    variant = get_variant(workload, preset.variant)
    kwargs = dict(params)
    if seed is not None:
        kwargs["seed"] = seed
    return require_verified(variant.func(config, **kwargs))


def run_scenario_point(workload: str, system: str,
                       params: Dict[str, object],
                       overrides: Dict[str, object],
                       seed: Optional[int] = None,
                       config: object = None) -> PointResult:
    """Per-system scenario point: one row for one (system, grid cell)."""
    result = _run_one(workload, system, params, overrides, seed, config)
    row: Dict[str, object] = {"workload": workload, "system": system}
    row.update(params)
    row.update(time_ms=result.time_ms, dram_accesses=result.dram_accesses,
               verified=result.verified)
    return PointResult(rows=[row], stats=dict(result.counters))


def run_comparison_point(workload: str, systems: Tuple[str, ...],
                         params: Dict[str, object],
                         overrides: Dict[str, object],
                         seed: Optional[int] = None,
                         derive: Optional[str] = None,
                         configs: Optional[Dict[str, object]] = None
                         ) -> PointResult:
    """Comparison scenario point: run every system, fold into one wide row.

    ``derive`` names (``module:qualname``) a function
    ``derive(results, params) -> row`` receiving the per-system
    :class:`~repro.workloads.base.WorkloadResult` s keyed by preset name;
    without it a generic ``{params, <system>_ms, <system>_dram}`` row is
    built.  Stats merge the counters of every system's run.
    """
    results = {}
    stats: Dict[str, int] = {}
    for system in systems:
        config = (configs or {}).get(system)
        result = _run_one(workload, system, params, overrides, seed, config)
        results[system] = result
        for name, value in result.counters.items():
            stats[name] = stats.get(name, 0) + value
    if derive is not None:
        produced = resolve_point_func(derive)(results, dict(params))
        rows = [produced] if isinstance(produced, dict) else list(produced)
    else:
        row: Dict[str, object] = {"workload": workload}
        row.update(params)
        for system, result in results.items():
            row[f"{system}_ms"] = result.time_ms
            row[f"{system}_dram"] = result.dram_accesses
        rows = [row]
    return PointResult(rows=rows, stats=stats)


#: Reference strings for the two point functions (what scenario points carry).
SCENARIO_POINT = f"{run_scenario_point.__module__}:{run_scenario_point.__qualname__}"
COMPARISON_POINT = (f"{run_comparison_point.__module__}:"
                    f"{run_comparison_point.__qualname__}")

_UNSET = object()

GridLike = Mapping[str, Union[Sequence[object], object]]


def _normalise_grid(grid: Optional[GridLike]
                    ) -> "Tuple[Tuple[str, Tuple[object, ...]], ...]":
    """Normalise a grid mapping to ordered (name, values-tuple) pairs.

    Scalars become one-element axes, so ``{"size": 32}`` and
    ``{"size": (32,)}`` mean the same thing.
    """
    if not grid:
        return ()
    axes = []
    for name, values in grid.items():
        if isinstance(values, (str, bytes)) or not isinstance(
                values, SequenceABC):
            values = (values,)
        values = tuple(values)
        if not values:
            raise ScenarioError(f"grid axis {name!r} has no values")
        axes.append((str(name), values))
    return tuple(axes)


class Scenario:
    """A declarative (workload x systems x grid x overrides) study.

    Parameters
    ----------
    workload:
        Registry name of the workload (``repro.workloads.registry``).
    systems:
        System preset names (``repro.systems``) the workload runs on.
    grid:
        Ordered mapping ``param -> values`` swept as a cartesian product
        (in declaration order; the rightmost axis varies fastest).  Scalar
        values are one-element axes.
    params:
        Fixed workload parameters applied to every point (not part of the
        point id).
    overrides:
        Dotted-path configuration overrides (``{"mttop.count": 20}``).
        Each override is applied to every selected system whose
        configuration the full path resolves on; an override applicable to
        *no* selected system is an error, raised when points are built.
    seed:
        Workload input seed; ``None`` uses each variant's default.
    derive:
        ``module:qualname`` reference of a row-derivation function.  Its
        presence switches the scenario to *comparison* shape: one point
        per grid cell running every system (see
        :func:`run_comparison_point`).
    name:
        Sweep name used for cache subdirectories and error messages
        (default ``sweep-<workload>``).
    group:
        Output panel name for the points (multi-panel sweeps register
        several scenarios with distinct groups).
    full_grid:
        Replacement axis values used when points are built with
        ``full=True`` (the CLI's ``--full``); axes absent here keep their
        ``grid`` values.
    """

    def __init__(self, workload: str, systems: Sequence[str],
                 grid: Optional[GridLike] = None,
                 params: Optional[Mapping[str, object]] = None,
                 overrides: Optional[Mapping[str, object]] = None,
                 seed: Optional[int] = None,
                 derive: Optional[str] = None,
                 name: Optional[str] = None,
                 group: str = "rows",
                 full_grid: Optional[GridLike] = None) -> None:
        if not systems:
            raise ScenarioError("a scenario needs at least one system")
        self.workload = workload
        self.systems = tuple(systems)
        self.grid = _normalise_grid(grid)
        self.params = dict(params or {})
        self.overrides = dict(overrides or {})
        self.seed = seed
        self.derive = derive
        self.name = name if name is not None else f"sweep-{workload}"
        self.group = group
        self.full_grid = _normalise_grid(full_grid)

    # ------------------------------------------------------------------ #
    # Validation and expansion
    # ------------------------------------------------------------------ #
    def _check(self, overrides: Mapping[str, object],
               configs: Mapping[str, object]) -> None:
        factories = {}
        for system in self.systems:
            preset = get_system(system)           # raises on unknown preset
            get_variant(self.workload, preset.variant)  # and unknown variant
            factories[system] = preset.factory()
        for path, value in overrides.items():
            applied = False
            for config in factories.values():
                if override_applies(config, path):
                    # Applying once also validates the *value* (type
                    # coercion, size suffixes) so a bad --set fails here,
                    # before any backend work, not per point mid-run.
                    apply_overrides(config, {path: value})
                    applied = True
                    break
            if applied:
                continue
            # The full path resolves on no selected system.  If some
            # system at least has the path's root section, applying the
            # override there surfaces the precise field error (naming the
            # valid alternatives) upfront, instead of per-point mid-run.
            root = path.split(".", 1)[0]
            for config in factories.values():
                if override_applies(config, root):
                    apply_overrides(config, {path: value})
            raise ScenarioError(
                f"override {path!r} applies to none of the selected "
                f"systems ({', '.join(self.systems)})")
        unknown = set(configs) - set(self.systems)
        if unknown:
            raise ScenarioError(
                f"explicit configs given for unselected systems: "
                f"{', '.join(sorted(unknown))}")

    def _axes(self, full: bool, grid: Optional[GridLike]
              ) -> "Tuple[Tuple[str, Tuple[object, ...]], ...]":
        axes = self.grid
        if full and self.full_grid:
            full_axes = dict(self.full_grid)
            axes = tuple((name, full_axes.get(name, values))
                         for name, values in axes)
            axes += tuple((name, values) for name, values in self.full_grid
                          if name not in dict(self.grid))
        if grid is not None:
            replacement = _normalise_grid(grid)
            replaced = dict(replacement)
            axes = tuple((name, replaced.pop(name, values))
                         for name, values in axes)
            axes += tuple((name, values) for name, values in replacement
                          if name in replaced)
        return axes

    def points(self, full: bool = False, grid: Optional[GridLike] = None,
               params: Optional[Mapping[str, object]] = None,
               seed: object = _UNSET,
               overrides: Optional[Mapping[str, object]] = None,
               configs: Optional[Mapping[str, object]] = None
               ) -> List[SweepPoint]:
        """Expand the scenario into sweep points.

        ``grid`` / ``params`` / ``seed`` / ``overrides`` replace the
        scenario's own values per call (axes given in ``grid`` keep the
        scenario's declared axis order).  ``configs`` maps preset names to
        explicit configuration dataclasses — mainly for tests that run a
        figure on a scaled-down chip; an explicit config is used as-is
        (overrides are not applied on top) and, unlike the default
        name-only points, is carried by value in the point's kwargs.
        """
        effective_overrides = dict(self.overrides if overrides is None
                                   else overrides)
        effective_params = dict(self.params if params is None else params)
        effective_seed = self.seed if seed is _UNSET else seed
        effective_configs = {key: value
                             for key, value in (configs or {}).items()
                             if value is not None}
        self._check(effective_overrides, effective_configs)
        # Per-system points only carry the overrides that resolve on that
        # system's config: an override inapplicable to a system must not
        # perturb that system's cache keys (its results cannot depend on
        # it).  Comparison points run every system, so they keep the full
        # set.
        per_system_overrides = {
            system: {path: effective_overrides[path]
                     for path in overrides_applicable(system,
                                                      effective_overrides)}
            for system in self.systems}
        axes = self._axes(full, grid)
        names = [name for name, _ in axes]
        cells = itertools.product(*(values for _, values in axes)) \
            if axes else iter(((),))

        points = []
        for cell in cells:
            cell_params = dict(zip(names, cell))
            point_id = ",".join(f"{name}={value}"
                                for name, value in cell_params.items())
            all_params = dict(effective_params)
            all_params.update(cell_params)
            if self.derive is not None:
                kwargs: Dict[str, object] = {
                    "workload": self.workload, "systems": self.systems,
                    "params": all_params, "overrides": effective_overrides,
                    "seed": effective_seed, "derive": self.derive,
                }
                if effective_configs:
                    kwargs["configs"] = dict(effective_configs)
                points.append(SweepPoint(
                    spec=self.name, point_id=point_id or "all",
                    func=COMPARISON_POINT, kwargs=kwargs, group=self.group))
            else:
                for system in self.systems:
                    kwargs = {
                        "workload": self.workload, "system": system,
                        "params": all_params,
                        "overrides": per_system_overrides[system],
                        "seed": effective_seed,
                    }
                    if system in effective_configs:
                        kwargs["config"] = effective_configs[system]
                    sys_id = f"system={system}"
                    points.append(SweepPoint(
                        spec=self.name,
                        point_id=f"{sys_id},{point_id}" if point_id else sys_id,
                        func=SCENARIO_POINT, kwargs=kwargs, group=self.group))
        return points

    # ------------------------------------------------------------------ #
    # Execution and registration
    # ------------------------------------------------------------------ #
    def run(self, runner: Optional["SweepRunner"] = None, full: bool = False,
            jobs: int = 1, cache_dir: Optional[str] = None,
            backend: Optional[object] = None,
            **point_kwargs: object) -> "ResultSet":
        """Execute the scenario and return its :class:`ResultSet`.

        ``runner`` wins when given; otherwise a
        :class:`~repro.harness.runner.SweepRunner` is built from ``jobs``
        / ``cache_dir`` / ``backend``.  ``point_kwargs`` forward to
        :meth:`points` (``grid=``, ``seed=``, ...).
        """
        from repro.harness.runner import SweepRunner

        if runner is None:
            runner = SweepRunner(jobs=jobs, cache_dir=cache_dir,
                                 backend=backend)
        outcome = runner.run_points(self.points(full=full, **point_kwargs),
                                    spec_name=self.name)
        return ResultSet.from_outcome(outcome)

    def spec(self, title: str,
             render: Optional[Callable[[object], str]] = None) -> SweepSpec:
        """Wrap the scenario as a registrable :class:`SweepSpec`."""
        def build_points(full: bool = False, **kwargs: object):
            return self.points(full=full, **kwargs)  # type: ignore[arg-type]

        return SweepSpec(name=self.name, title=title,
                         build_points=build_points,
                         render=render if render is not None
                         else lambda result: ResultSet.from_result(result).render())


# --------------------------------------------------------------------------- #
# ResultSet
# --------------------------------------------------------------------------- #
def parse_scalar(text: str) -> object:
    """Parse one untyped cell/CLI value: int, then float, then bool, else str.

    The single scalar parser shared by :meth:`ResultSet.from_csv` and the
    ``repro sweep`` ``--grid``/``--param`` flags, so a value typed on the
    command line and the same value round-tripped through CSV parse under
    one set of rules.  Booleans accept ``true``/``false`` in any case
    (which makes the literal *strings* ``"true"``/``"True"`` unparseable
    back to strings — untyped CSV cannot distinguish them).
    """
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() == "true":
        return True
    if text.lower() == "false":
        return False
    return text


@dataclass
class ResultSet:
    """Typed sweep results: ordered row groups plus merged stats.

    ``groups`` maps panel names to row lists; single-panel sweeps use the
    one group ``"rows"``.  All transforms (:meth:`filter`,
    :meth:`columns`) preserve the grouping, so multi-panel sweeps (Figure
    8) keep their panel labels through serialisation round trips.
    """

    groups: Dict[str, List[Dict[str, object]]]
    stats: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_outcome(cls, outcome: "SweepOutcome") -> "ResultSet":
        """Build from a :class:`~repro.harness.runner.SweepOutcome`."""
        result = cls.from_result(outcome.result)
        result.stats = outcome.stats.to_dict()
        return result

    @classmethod
    def from_result(cls, result: object) -> "ResultSet":
        """Build from the legacy combined shape (row list or panel dict)."""
        if isinstance(result, list):
            return cls(groups={"rows": list(result)})
        if isinstance(result, dict):
            return cls(groups={str(group): list(rows)
                               for group, rows in result.items()})
        raise TypeError(f"cannot build a ResultSet from "
                        f"{type(result).__name__}")

    # ------------------------------------------------------------------ #
    # Access and transforms
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> List[Dict[str, object]]:
        """All rows, concatenated across groups in group order."""
        return [row for rows in self.groups.values() for row in rows]

    def __len__(self) -> int:
        return sum(len(rows) for rows in self.groups.values())

    def filter(self, predicate: Optional[Callable[[Dict[str, object]], bool]]
               = None, **equals: object) -> "ResultSet":
        """Rows matching ``predicate`` and/or column equality tests."""
        def keep(row: Dict[str, object]) -> bool:
            if predicate is not None and not predicate(row):
                return False
            return all(row.get(column) == value
                       for column, value in equals.items())

        return ResultSet(groups={group: [row for row in rows if keep(row)]
                                 for group, rows in self.groups.items()},
                         stats=dict(self.stats))

    def columns(self, *names: str) -> "ResultSet":
        """Project every row onto ``names`` (missing columns are dropped)."""
        return ResultSet(groups={group: [{name: row[name] for name in names
                                          if name in row} for row in rows]
                                 for group, rows in self.groups.items()},
                         stats=dict(self.stats))

    def column(self, name: str) -> List[object]:
        """The values of one column across all rows."""
        return [row[name] for row in self.rows if name in row]

    def sorted(self, *names: str) -> "ResultSet":
        """Rows sorted by the given columns, per group (stable).

        Missing columns sort before present ones, so heterogeneous rows
        keep a deterministic order (the DSE frontier sorts its rows by
        cost then objective this way).
        """
        def key(row: Dict[str, object]):
            return tuple((name in row, row.get(name)) for name in names)

        return ResultSet(groups={group: sorted(rows, key=key)
                                 for group, rows in self.groups.items()},
                         stats=dict(self.stats))

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_csv(self, columns: Optional[Sequence[str]] = None,
               formatted: bool = False) -> str:
        """CSV text; multi-panel sets emit ``# group`` section headers.

        ``formatted=True`` applies the report renderer's human formatting
        (3-decimal floats, yes/no booleans) — what ``repro run --csv``
        emits; the default writes full-precision ``str()`` values so
        :meth:`from_csv` round-trips losslessly.
        """
        def one(rows: List[Dict[str, object]]) -> str:
            if formatted:
                return rows_to_csv(rows, columns)
            if not rows:
                return ""
            import csv
            import io
            names = list(columns) if columns is not None \
                else list(rows[0].keys())
            out = io.StringIO()
            writer = csv.writer(out, lineterminator="\n")
            writer.writerow(names)
            for row in rows:
                writer.writerow([row.get(name, "") for name in names])
            return out.getvalue().rstrip("\n")

        if set(self.groups) == {"rows"}:
            return one(self.groups["rows"])
        parts = []
        for group, rows in self.groups.items():
            parts.append(f"# {group}")
            parts.append(one(rows))
        return "\n".join(parts)

    @classmethod
    def from_csv(cls, text: str) -> "ResultSet":
        """Parse :meth:`to_csv` output (the unformatted form) back to rows."""
        import csv as csv_module
        import io

        groups: Dict[str, List[Dict[str, object]]] = {}
        current = "rows"
        explicit = False  # current came from a "# group" header
        section: List[str] = []

        def flush() -> None:
            if not section:
                # An empty section under an explicit header is an empty
                # panel (e.g. a filter() drained it): keep its label so the
                # round trip stays lossless.  The implicit leading "rows"
                # section being empty just means the text starts with a
                # header.
                if explicit:
                    groups[current] = []
                return
            # Parse the whole section as one stream (not line by line), so
            # RFC 4180 quoted cells containing newlines survive intact.
            reader = csv_module.reader(io.StringIO("\n".join(section)))
            parsed = list(reader)
            header, body = parsed[0], parsed[1:]
            groups[current] = [
                {name: parse_scalar(cell) for name, cell in zip(header, line)}
                for line in body]

        # "# group" only delimits sections *between* records: a physical
        # line starting with "# " inside a quoted multi-line cell is data.
        # Track quote parity (doubled quotes cancel out) to know which.
        in_quotes = False
        for line in text.split("\n"):
            if not in_quotes and line.startswith("# "):
                flush()
                current = line[2:]
                explicit = True
                section = []
                continue
            if line or in_quotes:
                section.append(line)
            if line.count('"') % 2:
                in_quotes = not in_quotes
        flush()
        return cls(groups=groups)

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON text: ``{"groups": {...}, "stats": {...}}``."""
        return json.dumps({"groups": self.groups, "stats": self.stats},
                          indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        if not isinstance(payload, dict) or "groups" not in payload:
            raise ValueError("expected a JSON object with a 'groups' key")
        return cls(groups={str(group): list(rows)
                           for group, rows in payload["groups"].items()},
                   stats=dict(payload.get("stats", {})))

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render(self, title: Optional[str] = None,
               columns: Optional[Sequence[str]] = None) -> str:
        """Aligned text table(s); multi-panel sets render one per group."""
        if set(self.groups) == {"rows"}:
            return render_table(self.groups["rows"], columns, title=title)
        parts = []
        for group, rows in self.groups.items():
            group_title = f"{title} — {group}" if title else group
            parts.append(render_table(rows, columns, title=group_title))
        return "\n\n".join(parts)


# --------------------------------------------------------------------------- #
# Sweep-service job types
# --------------------------------------------------------------------------- #
# The typed submission/status vocabulary shared by the ``repro serve``
# server, the ``repro submit``/``status``/``result`` client CLI and the
# ``service`` execution backend — one JSON shape instead of three ad-hoc
# dict conventions.  Everything here is JSON-round-trippable: a job's
# points travel as the same base64 payloads the distributed wire protocol
# uses, with their functions forced to ``module:qualname`` *references*
# (never pickled callables).


class JobState(enum.Enum):
    """Lifecycle of a sweep-service job."""

    QUEUED = "queued"        #: accepted, no point dispatched yet
    RUNNING = "running"      #: at least one point dispatched
    DONE = "done"            #: every point completed successfully
    FAILED = "failed"        #: every point settled, at least one failed
    CANCELLED = "cancelled"  #: cancelled; undispatched points never ran

    @property
    def terminal(self) -> bool:
        """Whether the job can no longer change state."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)

    @classmethod
    def from_json(cls, value: object) -> "JobState":
        try:
            return cls(str(value))
        except ValueError:
            known = ", ".join(state.value for state in cls)
            raise ValueError(
                f"unknown job state {value!r}; known states: {known}") from None


@dataclass
class JobSpec:
    """A client's submission to the sweep service: named, prioritised points.

    ``points`` entries are plain dicts ``{"spec", "point_id", "group",
    "point"}`` where ``point`` is the wire encoding of a
    :class:`~repro.harness.spec.SweepPoint` whose ``func`` is a
    ``module:qualname`` reference (build them with :meth:`from_points`).
    ``meta`` is opaque client data echoed back with results — the CLI
    stashes rendering hints (title, registered-sweep name) there.
    """

    name: str
    submitter: str
    priority: int = 0
    points: List[Dict[str, object]] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_points(cls, points: Sequence[SweepPoint], *, name: str,
                    submitter: str, priority: int = 0,
                    meta: Optional[Mapping[str, object]] = None) -> "JobSpec":
        """Encode ``points`` for submission.

        Functions are converted to their reference strings first
        (:func:`~repro.harness.spec.point_func_ref`), so no callable is
        ever pickled into a job — the server and its workers resolve the
        names by import, exactly like distributed sweeps do.  A point
        whose kwargs cannot be encoded raises here, at submission time.
        """
        from repro.harness.wire import encode_point

        encoded = []
        for point in points:
            by_ref = replace(point, func=point_func_ref(point))
            encoded.append({"spec": point.spec, "point_id": point.point_id,
                            "group": point.group,
                            "point": encode_point(by_ref)})
        return cls(name=name, submitter=submitter, priority=priority,
                   points=encoded, meta=dict(meta or {}))

    def to_json(self) -> Dict[str, object]:
        return {"name": self.name, "submitter": self.submitter,
                "priority": self.priority, "points": list(self.points),
                "meta": dict(self.meta)}

    @classmethod
    def from_json(cls, payload: object) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ValueError("job spec must be a JSON object")
        points = payload.get("points")
        if not isinstance(points, list):
            raise ValueError("job spec needs a 'points' list")
        for entry in points:
            if not isinstance(entry, dict) or \
                    not all(isinstance(entry.get(key), str)
                            for key in ("spec", "point_id", "point")):
                raise ValueError(
                    "each job point needs string 'spec', 'point_id' and "
                    "'point' fields")
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ValueError("job priority must be an integer")
        meta = payload.get("meta", {})
        return cls(name=str(payload.get("name", "job")),
                   submitter=str(payload.get("submitter", "unknown")),
                   priority=priority, points=list(points),
                   meta=dict(meta) if isinstance(meta, dict) else {})


@dataclass
class JobStatus:
    """One job's externally visible progress snapshot."""

    job_id: str
    name: str
    submitter: str
    priority: int
    state: JobState
    total: int
    completed: int        #: points settled successfully
    failed: int           #: points settled as failures
    error: Optional[str] = None

    @property
    def settled(self) -> int:
        """Points that have a final outcome (success or failure)."""
        return self.completed + self.failed

    def to_json(self) -> Dict[str, object]:
        return {"job_id": self.job_id, "name": self.name,
                "submitter": self.submitter, "priority": self.priority,
                "state": self.state.value, "total": self.total,
                "completed": self.completed, "failed": self.failed,
                "error": self.error}

    @classmethod
    def from_json(cls, payload: object) -> "JobStatus":
        if not isinstance(payload, dict):
            raise ValueError("job status must be a JSON object")
        return cls(job_id=str(payload.get("job_id", "")),
                   name=str(payload.get("name", "")),
                   submitter=str(payload.get("submitter", "")),
                   priority=int(payload.get("priority", 0)),  # type: ignore[arg-type]
                   state=JobState.from_json(payload.get("state")),
                   total=int(payload.get("total", 0)),  # type: ignore[arg-type]
                   completed=int(payload.get("completed", 0)),  # type: ignore[arg-type]
                   failed=int(payload.get("failed", 0)),  # type: ignore[arg-type]
                   error=(None if payload.get("error") is None
                          else str(payload.get("error"))))


if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type names
    from repro.harness.runner import SweepOutcome, SweepRunner  # noqa: F401
