"""repro — reproduction of Hechtman & Sorin, "Evaluating Cache Coherent
Shared Virtual Memory for Heterogeneous Multicore Chips" (ISPASS 2013).

The package provides:

* a simulator of the paper's CCSVM heterogeneous chip (CPU + MTTOP cores
  tightly coupled through MOESI-coherent shared virtual memory) and its
  xthreads programming model (:mod:`repro.core`);
* a calibrated model of the loosely-coupled AMD Llano APU baseline running
  an OpenCL-style runtime (:mod:`repro.baseline`);
* the paper's workloads — vector add, dense matrix multiply, all-pairs
  shortest path, Barnes-Hut and sparse matrix multiply
  (:mod:`repro.workloads`);
* an experiment harness that regenerates every figure of the evaluation
  (:mod:`repro.experiments`).

Quick start::

    from repro import CCSVMChip, ccsvm_system
    from repro.workloads.vector_add import vector_add_host

    chip = CCSVMChip(ccsvm_system())
    result = chip.run(vector_add_host(chip, size=256))
    print(f"{result.time_ns:.0f} ns, {result.dram_accesses} DRAM accesses")
"""

from repro.config import (
    APUSystemConfig,
    CCSVMSystemConfig,
    amd_apu_system,
    apu_shared_l2_system,
    ccsvm_l3_system,
    ccsvm_no_tlb_system,
    ccsvm_system,
    small_ccsvm_system,
    tiny_caches_ccsvm_system,
)
from repro.api import JobSpec, JobState, JobStatus, ResultSet, Scenario
from repro.core.chip import CCSVMChip, RunResult
from repro.errors import ReproError
from repro.harness import SweepPoint, SweepRunner, SweepSpec

__version__ = "1.8.0"

__all__ = [
    "APUSystemConfig",
    "CCSVMChip",
    "CCSVMSystemConfig",
    "JobSpec",
    "JobState",
    "JobStatus",
    "ReproError",
    "ResultSet",
    "RunResult",
    "Scenario",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "__version__",
    "amd_apu_system",
    "apu_shared_l2_system",
    "ccsvm_l3_system",
    "ccsvm_no_tlb_system",
    "ccsvm_system",
    "small_ccsvm_system",
    "tiny_caches_ccsvm_system",
]
