"""Search strategies over a shape space: grid, random, successive halving.

The :class:`Explorer` is the coordinator: it prunes inadmissible shapes
against the :class:`~repro.dse.budget.Budget` *before* any simulation,
serves every (shape, fidelity) measurement from the
:mod:`repro.store` result store when it can, dispatches the rest through
an ordinary :class:`~repro.harness.backends.ExecutionBackend`, and
stamps each fresh result with provenance exactly like
:class:`~repro.harness.runner.SweepRunner` does — a DSE point and a
sweep point are indistinguishable in the cache.

Three strategies:

- :class:`GridSearch` measures every admissible shape at full fidelity.
- :class:`RandomSearch` measures a seeded sample of them.
- :class:`SuccessiveHalving` climbs the space's fidelity ladder,
  keeping the best ``ceil(n / eta)`` shapes per rung.  It consumes the
  backend's streaming ``run_iter`` results and, the moment every
  measurement it still *needs* has resolved, calls ``backend.cancel()``
  — in-flight points of eliminated shapes are abandoned, which is the
  entire payoff of PR 7's cancellable backend API.  Each rung's batch
  also carries *speculative* next-rung points for the current
  survivors, so the next rung is usually already warm when the cut is
  decided.

Determinism: a rung's cut depends only on the complete set of rung
scores (ties broken by shape index), never on completion order, and
speculative results of eliminated shapes are discarded from ranking
even when they happened to complete — so the frontier is byte-identical
across backends, worker counts and cancel timing.  Warm reruns serve
every needed point from the store and dispatch nothing at all.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import ResultSet
from repro.dse.budget import Budget, costs as budget_costs
from repro.dse.frontier import frontier_result
from repro.dse.space import Shape, ShapeSpace
from repro.errors import ReproError
from repro.harness.backends import (
    ExecutionBackend,
    PointFailure,
    SerialBackend,
)
from repro.harness.spec import PointResult, SweepPoint, point_func_ref
from repro.store import (
    FileStore,
    Provenance,
    ResultStore,
    StoreEntry,
    kwargs_digest,
    point_cache_key,
)

__all__ = [
    "DseError",
    "Exploration",
    "ExploreStats",
    "Explorer",
    "GridSearch",
    "PrunedShape",
    "RandomSearch",
    "STRATEGY_NAMES",
    "SuccessiveHalving",
    "create_strategy",
]


class DseError(ReproError):
    """A design-space exploration was declared or executed inconsistently."""


@dataclass
class PrunedShape:
    """A shape the explorer refused to simulate, and why."""

    shape: Shape
    reason: str


@dataclass
class ExploreStats:
    """Counters one exploration accumulated (rendered by ``--stats``)."""

    shapes_total: int = 0
    shapes_pruned: int = 0       #: inadmissible/unbuildable, never simulated
    points_cached: int = 0       #: needed measurements served by the store
    points_simulated: int = 0    #: measurements actually executed
    points_cancelled: int = 0    #: dispatched but abandoned by cancel()
    points_discarded: int = 0    #: completed speculatively, shape eliminated
    cancels: int = 0             #: backend.cancel() calls issued

    def to_dict(self) -> Dict[str, int]:
        return {f"dse.{name}": value
                for name, value in vars(self).items()}


@dataclass
class _ShapeState:
    """One admissible shape with its built config and cost metrics."""

    shape: Shape
    config: object
    costs: Dict[str, object]


@dataclass
class Exploration:
    """Everything one exploration produced."""

    result: ResultSet            #: frontier (and optionally dominated) rows
    rows: List[Dict[str, object]]  #: every final measurement row
    pruned: List[PrunedShape]
    stats: ExploreStats


def _score(row: Dict[str, object], objective: str) -> float:
    try:
        value = row[objective]
    except KeyError:
        raise DseError(
            f"measurement row has no objective column {objective!r}; "
            f"columns: {', '.join(sorted(map(str, row)))}") from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DseError(
            f"objective {objective!r} must be numeric, got "
            f"{type(value).__name__} ({value!r})")
    return float(value)


class Explorer:
    """Budget-aware measurement coordinator for one shape space.

    Parameters
    ----------
    space:
        The :class:`~repro.dse.space.ShapeSpace` to explore.
    budget:
        Admissibility ceilings; the default admits every buildable shape
        (shapes whose configuration will not even construct — unknown
        override path, invalid field value — are always pruned).
    objective:
        Result-row column to minimise (``time_ms``, ``dram_accesses``).
    cost:
        Cost metric to minimise, one of the :func:`repro.dse.budget.costs`
        keys (``sram_bytes``, ``area_mm2``, ``latency_ns``).
    backend:
        Execution backend for fresh points (default: serial).
    store / cache_dir:
        The result store warm searches read and every fresh measurement
        is written to (``store`` wins; ``None``/``None`` disables
        persistence, mainly for tests).
    """

    def __init__(self, space: ShapeSpace, budget: Optional[Budget] = None,
                 objective: str = "time_ms", cost: str = "sram_bytes",
                 backend: Optional[ExecutionBackend] = None,
                 store: Optional[ResultStore] = None,
                 cache_dir: Optional[str] = None) -> None:
        self.space = space
        self.budget = budget if budget is not None else Budget()
        self.objective = objective
        valid_costs = ("sram_bytes", "area_mm2", "latency_ns")
        if cost not in valid_costs:
            raise DseError(f"unknown cost metric {cost!r}; valid metrics: "
                           f"{', '.join(valid_costs)}")
        self.cost = cost
        self.backend = backend if backend is not None else SerialBackend()
        if store is None and cache_dir is not None:
            store = FileStore(cache_dir)
        self.store = store
        self.stats = ExploreStats()
        self._points: Dict[Tuple[int, Optional[int]], SweepPoint] = {}

    # ------------------------------------------------------------------ #
    # Admissibility
    # ------------------------------------------------------------------ #
    def admissible(self) -> Tuple[List[_ShapeState], List[PrunedShape]]:
        """Split the space's shapes into buildable-and-in-budget vs pruned.

        Pruning happens entirely from configuration dataclasses — no
        point is dispatched, no workload runs — which is the budget
        model's whole purpose.
        """
        states: List[_ShapeState] = []
        pruned: List[PrunedShape] = []
        for shape in self.space.shapes():
            try:
                config = self.space.config(shape)
            except ReproError as error:
                pruned.append(PrunedShape(shape, f"unbuildable: {error}"))
                continue
            try:
                verdict = self.budget.check(config)
            except ReproError as error:
                pruned.append(PrunedShape(shape, str(error)))
                continue
            if not verdict.admissible:
                pruned.append(PrunedShape(shape, verdict.reason or
                                          "over budget"))
                continue
            states.append(_ShapeState(shape, config,
                                      dict(budget_costs(config,
                                                        self.budget.cost))))
        self.stats.shapes_total = len(states) + len(pruned)
        self.stats.shapes_pruned = len(pruned)
        return states, pruned

    # ------------------------------------------------------------------ #
    # Store plumbing (mirrors SweepRunner's, point for point)
    # ------------------------------------------------------------------ #
    def point_for(self, shape: Shape, rung: Optional[int]) -> SweepPoint:
        """The sweep point measuring ``shape`` at fidelity rung ``rung``."""
        key = (shape.index, rung)
        if key not in self._points:
            fid_value = None if rung is None \
                else self.space.fidelity.values[rung]  # type: ignore[union-attr]
            points = self.space.scenario(shape, fid_value).points()
            self._points[key] = points[0]
        return self._points[key]

    def _load(self, point: SweepPoint) -> Optional[Dict[str, object]]:
        if self.store is None:
            return None
        entry = self.store.load(point.spec, point_cache_key(point))
        if entry is None or not entry.rows:
            return None
        return dict(entry.rows[0])

    def _store(self, point: SweepPoint, result: PointResult,
               worker: Optional[str] = None,
               duration_s: Optional[float] = None) -> None:
        if self.store is None:
            return
        from repro.harness.runner import point_seed

        provenance = Provenance.collect(
            spec=point.spec, point_id=point.point_id,
            func=point_func_ref(point),
            kwargs_digest=kwargs_digest(point.kwargs),
            seed=point_seed(point), backend=self.backend.name,
            worker=worker, duration_s=duration_s)
        entry = StoreEntry(point_id=point.point_id, rows=result.rows,
                           stats=result.stats, provenance=provenance)
        try:
            self.store.store(point.spec, point_cache_key(point), entry)
        except OSError:
            pass  # a full/read-only disk degrades to no caching

    def _point_worker(self, offset: int) -> Optional[str]:
        workers = getattr(self.backend, "last_point_workers", None)
        if isinstance(workers, dict):
            label = workers.get(offset)
            if isinstance(label, str):
                return label
        return None

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def final_rung(self) -> Optional[int]:
        """The full-fidelity rung index (``None`` without a ladder)."""
        if self.space.fidelity is None:
            return None
        return len(self.space.fidelity.values) - 1

    def measure(self, states: Sequence[_ShapeState], rung: Optional[int]
                ) -> Dict[int, Dict[str, object]]:
        """Measure every state at ``rung``; store-first, one batch for
        the rest.  Returns rows keyed by shape index."""
        rows: Dict[int, Dict[str, object]] = {}
        pending: List[_ShapeState] = []
        for state in states:
            row = self._load(self.point_for(state.shape, rung))
            if row is not None:
                rows[state.shape.index] = row
                self.stats.points_cached += 1
            else:
                pending.append(state)
        if not pending:
            return rows
        points = [self.point_for(state.shape, rung) for state in pending]
        self.backend.reset()
        failure: Optional[DseError] = None
        seen = 0
        started = time.monotonic()
        for offset, result in self.backend.run_iter(points):
            seen += 1
            state = pending[offset]
            if isinstance(result, PointFailure):
                failure = failure or DseError(
                    f"shape {state.shape.shape_id!r} failed on the "
                    f"{self.backend.name} backend: {result.error}")
                continue
            self.stats.points_simulated += 1
            self._store(points[offset], result,
                        worker=self._point_worker(offset),
                        duration_s=round(time.monotonic() - started, 6))
            rows[state.shape.index] = dict(result.rows[0])
        if failure is not None:
            raise failure
        if seen != len(pending):
            raise DseError(
                f"the {self.backend.name} backend returned {seen} results "
                f"for {len(pending)} points")
        return rows

    # ------------------------------------------------------------------ #
    # Exploration
    # ------------------------------------------------------------------ #
    def _row(self, state: _ShapeState,
             measured: Dict[str, object],
             fidelity_value: Optional[object]) -> Dict[str, object]:
        row: Dict[str, object] = {"system": state.shape.system}
        for path, value in state.shape.settings:
            if path != "system":
                row[path] = value
        if self.space.fidelity is not None and fidelity_value is not None:
            row[self.space.fidelity.param] = fidelity_value
        row[self.objective] = _score(measured, self.objective)
        row[self.cost] = state.costs[self.cost]
        return row

    def explore(self, strategy: "SearchStrategy",
                include_dominated: bool = False) -> Exploration:
        """Run ``strategy`` over the space and extract the Pareto frontier."""
        states, pruned = self.admissible()
        if not states:
            reasons = "; ".join(f"{p.shape.shape_id}: {p.reason}"
                                for p in pruned[:5])
            raise DseError(
                f"no admissible shape in space {self.space.name!r} under "
                f"budget {self.budget.describe()} "
                f"({len(pruned)} pruned: {reasons})")
        rung = self.final_rung()
        fidelity_value = None if rung is None \
            else self.space.fidelity.values[rung]  # type: ignore[union-attr]
        selected = strategy.run(self, states)
        rows = [self._row(state, measured, fidelity_value)
                for state, measured in selected]
        result = frontier_result(rows, self.objective, self.cost,
                                 include_dominated=include_dominated)
        result.stats = self.stats.to_dict()
        return Exploration(result=result, rows=rows, pruned=pruned,
                           stats=self.stats)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
class SearchStrategy:
    """Protocol: pick shapes and return their full-fidelity measurements.

    ``run`` receives the admissible shape states (in shape-index order)
    and returns ``(state, measured_row)`` pairs — the measurements the
    frontier is computed over, always at the space's highest fidelity.
    """

    name = "strategy"

    def run(self, explorer: Explorer, states: List[_ShapeState]
            ) -> List[Tuple[_ShapeState, Dict[str, object]]]:
        raise NotImplementedError


class GridSearch(SearchStrategy):
    """Exhaustive: measure every admissible shape at full fidelity."""

    name = "grid"

    def run(self, explorer: Explorer, states: List[_ShapeState]
            ) -> List[Tuple[_ShapeState, Dict[str, object]]]:
        rung = explorer.final_rung()
        rows = explorer.measure(states, rung)
        return [(state, rows[state.shape.index]) for state in states]


class RandomSearch(SearchStrategy):
    """Measure a seeded uniform sample of the admissible shapes.

    The sample depends only on ``seed`` and the admissible shape count,
    so a fixed seed reproduces the exact same subset (and frontier) on
    every run, warm or cold.
    """

    name = "random"

    def __init__(self, samples: int, seed: int = 0) -> None:
        if samples < 1:
            raise DseError(f"random search needs samples >= 1, got {samples}")
        self.samples = samples
        self.seed = seed

    def run(self, explorer: Explorer, states: List[_ShapeState]
            ) -> List[Tuple[_ShapeState, Dict[str, object]]]:
        count = min(self.samples, len(states))
        chosen = sorted(random.Random(self.seed).sample(range(len(states)),
                                                        count))
        picked = [states[index] for index in chosen]
        rung = explorer.final_rung()
        rows = explorer.measure(picked, rung)
        return [(state, rows[state.shape.index]) for state in picked]


class SuccessiveHalving(SearchStrategy):
    """Early-stopping search up the space's fidelity ladder.

    Every surviving shape is measured at each rung; after each non-final
    rung only the best ``ceil(n / eta)`` (by objective, ties broken by
    shape index) are promoted.  A rung's dispatch batch front-loads the
    rung's own missing measurements and *speculatively* appends the
    survivors' next-rung points; once every measurement the cut still
    needs has resolved, the backend is cancelled — points belonging to
    eliminated shapes stop mid-flight instead of burning simulation
    time.  Speculative results that did complete are stored (warming
    later searches) but never influence the current ranking.
    """

    name = "halving"

    def __init__(self, eta: int = 2) -> None:
        if eta < 2:
            raise DseError(f"halving needs eta >= 2, got {eta}")
        self.eta = eta

    def run(self, explorer: Explorer, states: List[_ShapeState]
            ) -> List[Tuple[_ShapeState, Dict[str, object]]]:
        if explorer.space.fidelity is None:
            raise DseError(
                f"successive halving needs a fidelity ladder; space "
                f"{explorer.space.name!r} declares none (add a [fidelity] "
                "table, or use --strategy grid/random)")
        rung_count = len(explorer.space.fidelity.values)
        survivors = list(states)
        scores: Dict[int, Dict[str, object]] = {}
        for rung in range(rung_count):
            last = rung == rung_count - 1
            scores = self._run_rung(explorer, survivors, rung, last)
            if not last:
                survivors = self._cut(explorer, survivors, scores)
        return [(state, scores[state.shape.index]) for state in survivors]

    # ------------------------------------------------------------------ #
    def _cut(self, explorer: Explorer, survivors: List[_ShapeState],
             scores: Dict[int, Dict[str, object]]) -> List[_ShapeState]:
        keep = max(1, math.ceil(len(survivors) / self.eta))
        ranked = sorted(
            survivors,
            key=lambda state: (_score(scores[state.shape.index],
                                      explorer.objective),
                               state.shape.index))
        kept = {state.shape.index for state in ranked[:keep]}
        # Preserve shape-index order so every later batch is ordered
        # identically no matter how this rung's results arrived.
        return [state for state in survivors if state.shape.index in kept]

    def _run_rung(self, explorer: Explorer, survivors: List[_ShapeState],
                  rung: int, last: bool) -> Dict[int, Dict[str, object]]:
        scores: Dict[int, Dict[str, object]] = {}
        missing: List[_ShapeState] = []
        for state in survivors:
            row = explorer._load(explorer.point_for(state.shape, rung))
            if row is not None:
                scores[state.shape.index] = row
                explorer.stats.points_cached += 1
            else:
                missing.append(state)
        if not missing:
            # Fully warm rung: nothing dispatched, nothing to cancel.
            return scores

        # The batch: this rung's missing points first, then speculative
        # next-rung points for every current survivor (they resolve to
        # cache hits on the next rung if their shape is promoted).
        batch: List[Tuple[_ShapeState, int]] = [(state, rung)
                                                for state in missing]
        if not last:
            for state in survivors:
                if explorer._load(explorer.point_for(state.shape,
                                                     rung + 1)) is None:
                    batch.append((state, rung + 1))
        points = [explorer.point_for(state.shape, point_rung)
                  for state, point_rung in batch]

        explorer.backend.reset()
        resolved: set = set()
        needed: Optional[set] = None if not last else set(range(len(missing)))
        kept_indices: Optional[set] = None
        cancelled = False
        started = time.monotonic()
        for offset, result in explorer.backend.run_iter(points):
            resolved.add(offset)
            state, point_rung = batch[offset]
            if isinstance(result, PointFailure):
                if point_rung == rung:
                    explorer.backend.cancel()
                    raise DseError(
                        f"shape {state.shape.shape_id!r} failed on the "
                        f"{explorer.backend.name} backend at fidelity rung "
                        f"{rung}: {result.error}")
                # A speculative failure only matters if the shape is
                # promoted — and then the next rung re-dispatches the
                # point and fails it as a needed one.
                continue
            explorer.stats.points_simulated += 1
            explorer._store(points[offset], result,
                            worker=explorer._point_worker(offset),
                            duration_s=round(time.monotonic() - started, 6))
            if point_rung == rung:
                scores[state.shape.index] = dict(result.rows[0])
            if needed is None and len(scores) == len(survivors):
                # Every rung score is in: the cut is decided; all that
                # is still needed are the promoted shapes' speculative
                # points already in this batch.
                kept_indices = {
                    kept.shape.index
                    for kept in self._cut(explorer, survivors, scores)}
                needed = {index for index, (entry_state, entry_rung)
                          in enumerate(batch)
                          if entry_rung == rung
                          or entry_state.shape.index in kept_indices}
            if needed is not None and not cancelled \
                    and needed <= resolved and len(resolved) < len(points):
                explorer.backend.cancel()
                explorer.stats.cancels += 1
                cancelled = True
        explorer.stats.points_cancelled += len(points) - len(resolved)
        if kept_indices is not None:
            explorer.stats.points_discarded += sum(
                1 for index in resolved
                if batch[index][1] != rung
                and batch[index][0].shape.index not in kept_indices)
        if len(scores) != len(survivors):
            raise DseError(
                f"the {explorer.backend.name} backend stopped after "
                f"{len(resolved)} of {len(points)} points with fidelity "
                f"rung {rung} still unmeasured")
        return scores


STRATEGY_NAMES = ("grid", "random", "halving")


def create_strategy(name: str, samples: Optional[int] = None,
                    seed: int = 0, eta: int = 2) -> SearchStrategy:
    """Build a strategy from CLI-ish parameters (``repro dse --strategy``)."""
    if name == "grid":
        return GridSearch()
    if name == "random":
        if samples is None:
            raise DseError("random search needs --samples")
        return RandomSearch(samples=samples, seed=seed)
    if name == "halving":
        return SuccessiveHalving(eta=eta)
    raise DseError(f"unknown search strategy {name!r}; valid strategies: "
                   f"{', '.join(STRATEGY_NAMES)}")
