"""Typed shape spaces: parameter axes that generate Scenarios, not code.

A :class:`ShapeSpace` declares the memory-hierarchy design space to
explore as *data*: a workload, a base system preset, and a list of typed
axes — categorical choices, size ranges stepped in KiB/MiB, boolean
toggles — each addressing a dotted configuration path
(:func:`repro.config.apply_overrides`).  The cartesian product of the
axes yields :class:`Shape` s; each shape becomes an ordinary one-point
:class:`repro.api.Scenario` through the existing preset registry and
override machinery, so *no per-shape code ever exists* and every
simulated point flows through the same cache, provenance and backend
paths as any sweep.

Spaces load from TOML/JSON files (``repro dse --space shapes.toml``)
through the same document reader scenario files use::

    # shapes.toml
    name = "l1-vs-l2"
    workload = "matmul"
    system = "ccsvm-small"

    [params]
    size = 8

    [fidelity]
    param = "size"
    values = [4, 8]

    [[axes]]
    path = "mttop.l1_size_bytes"
    kind = "size"
    min = "4KiB"
    max = "16KiB"
    factor = 2

    [[axes]]
    path = "l2.total_size_bytes"
    kind = "categorical"
    values = ["128KiB", "256KiB"]

The optional ``[fidelity]`` table names one workload parameter with an
ordered low→high value ladder — the rungs successive halving climbs; the
full-fidelity (last) value is what grid and random search measure at.
An axis may also address the special path ``"system"`` to make the
preset itself a dimension of the space.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api import Scenario
from repro.config import apply_overrides, override_applies, parse_size
from repro.errors import ReproError
from repro.scenario_io import load_document
from repro.systems import get_system

__all__ = [
    "BoolAxis",
    "CategoricalAxis",
    "Fidelity",
    "Shape",
    "ShapeSpace",
    "SizeAxis",
    "SpaceError",
    "space_from_file",
]


class SpaceError(ReproError):
    """A shape space was declared inconsistently."""


#: Axis path that selects the system preset instead of a config field.
SYSTEM_PATH = "system"


@dataclass(frozen=True)
class CategoricalAxis:
    """An explicit, ordered list of choices for one dotted path."""

    path: str
    choices: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise SpaceError(f"axis {self.path!r} has no choices")

    def values(self) -> Tuple[object, ...]:
        return self.choices


@dataclass(frozen=True)
class SizeAxis:
    """A byte-size range stepped additively (``step``) or geometrically
    (``factor``) — exactly one of the two.

    Bounds and step accept the usual size suffixes (``"128KiB"``,
    ``"4MiB"``) via :func:`repro.config.parse_size`; generated values are
    plain ints, inclusive of both bounds when the stepping lands on them.
    """

    path: str
    minimum: int
    maximum: int
    step: Optional[int] = None
    factor: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.step is None) == (self.factor is None):
            raise SpaceError(
                f"size axis {self.path!r} needs exactly one of step=/factor=")
        if self.minimum <= 0 or self.maximum < self.minimum:
            raise SpaceError(
                f"size axis {self.path!r} needs 0 < min <= max, got "
                f"min={self.minimum}, max={self.maximum}")
        if self.step is not None and self.step <= 0:
            raise SpaceError(f"size axis {self.path!r} needs a positive step")
        if self.factor is not None and self.factor < 2:
            raise SpaceError(f"size axis {self.path!r} needs factor >= 2")

    def values(self) -> Tuple[int, ...]:
        sizes: List[int] = []
        size = self.minimum
        while size <= self.maximum:
            sizes.append(size)
            size = size + self.step if self.step is not None \
                else size * self.factor
        return tuple(sizes)


@dataclass(frozen=True)
class BoolAxis:
    """A boolean toggle: the axis always contributes (False, True)."""

    path: str

    def values(self) -> Tuple[bool, ...]:
        return (False, True)


@dataclass(frozen=True)
class Fidelity:
    """An ordered low→high ladder over one workload parameter.

    The rungs of successive halving: survivors are re-measured at each
    successive value, losers are cancelled.  ``full`` (the last value) is
    the fidelity every strategy's final frontier is measured at.
    """

    param: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SpaceError("a fidelity ladder needs at least one value")
        if len(set(map(repr, self.values))) != len(self.values):
            raise SpaceError("fidelity values must be distinct")

    @property
    def full(self) -> object:
        """The highest-fidelity rung."""
        return self.values[-1]


@dataclass(frozen=True)
class Shape:
    """One point of the design space: a preset plus concrete axis values.

    ``settings`` keeps every axis assignment in declaration order
    (including a ``system`` axis, if any); ``overrides`` is the subset
    that is dotted-path configuration overrides.  ``shape_id`` is the
    stable human-readable identity used in logs and result rows.
    """

    index: int
    system: str
    settings: Tuple[Tuple[str, object], ...]
    overrides: Dict[str, object] = field(hash=False)
    shape_id: str = ""


class ShapeSpace:
    """A declared design space: workload, base system, axes, fidelity.

    Parameters
    ----------
    workload:
        Registry name of the workload every shape runs.
    system:
        Base preset name used when no ``system`` axis is declared.
    axes:
        The typed axes, in declaration order (the rightmost varies
        fastest in :meth:`shapes`).
    params:
        Fixed workload parameters shared by every shape.
    overrides:
        Base dotted-path overrides shared by every shape; paths that do
        not resolve on a given shape's system are skipped for that shape
        (heterogeneous spaces), exactly like scenario overrides.
    fidelity:
        Optional :class:`Fidelity` ladder (required by halving).
    seed:
        Workload input seed shared by every shape.
    name:
        Space name — the sweep/cache spec name of every generated point.
    """

    def __init__(self, workload: str, system: Optional[str] = None,
                 axes: Sequence[object] = (),
                 params: Optional[Mapping[str, object]] = None,
                 overrides: Optional[Mapping[str, object]] = None,
                 fidelity: Optional[Fidelity] = None,
                 seed: Optional[int] = None,
                 name: Optional[str] = None) -> None:
        self.workload = workload
        self.system = system
        self.axes = tuple(axes)
        self.params = dict(params or {})
        self.overrides = dict(overrides or {})
        self.fidelity = fidelity
        self.seed = seed
        self.name = name if name is not None else f"dse-{workload}"

        paths = [getattr(axis, "path", None) for axis in self.axes]
        if any(path is None for path in paths):
            raise SpaceError("every axis needs a dotted 'path'")
        duplicates = {path for path in paths if paths.count(path) > 1}
        if duplicates:
            raise SpaceError(
                f"duplicate axis paths: {', '.join(sorted(duplicates))}")
        self._has_system_axis = SYSTEM_PATH in paths
        if not self._has_system_axis and self.system is None:
            raise SpaceError(
                "a shape space needs a 'system' (or a system axis)")
        if self._has_system_axis:
            axis = self.axes[paths.index(SYSTEM_PATH)]
            if not isinstance(axis, CategoricalAxis):
                raise SpaceError("a 'system' axis must be categorical")
            for preset in axis.values():
                get_system(str(preset))   # raises on unknown preset
        elif self.system is not None:
            get_system(self.system)

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #
    def shapes(self) -> List[Shape]:
        """Every shape, in cartesian-product order (rightmost fastest)."""
        if not self.axes:
            raise SpaceError(f"space {self.name!r} declares no axes")
        shapes: List[Shape] = []
        value_lists = [axis.values() for axis in self.axes]
        for index, cell in enumerate(itertools.product(*value_lists)):
            settings = tuple((axis.path, value)
                             for axis, value in zip(self.axes, cell))
            system = self.system
            overrides: Dict[str, object] = {}
            for path, value in settings:
                if path == SYSTEM_PATH:
                    system = str(value)
                else:
                    overrides[path] = value
            shape_id = ",".join(f"{path}={value}" for path, value in settings)
            shapes.append(Shape(index=index, system=str(system),
                                settings=settings, overrides=overrides,
                                shape_id=shape_id))
        return shapes

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def config(self, shape: Shape):
        """Build ``shape``'s configuration dataclass, strictly.

        The shape's own axis overrides apply *strictly* — an axis path
        that does not resolve on the shape's system, or a value its
        ``__post_init__`` rejects (e.g. an L2 size that does not divide
        across the banks), raises here, which is how the explorer prunes
        unbuildable shapes before any simulation.  The space's shared
        base overrides follow scenario semantics: paths inapplicable to
        this system are skipped.
        """
        config = get_system(shape.system).factory()
        if shape.overrides:
            config = apply_overrides(config, shape.overrides)
        applicable = {path: value for path, value in self.overrides.items()
                      if override_applies(config, path)}
        if applicable:
            config = apply_overrides(config, applicable)
        return config

    def effective_overrides(self, shape: Shape) -> Dict[str, object]:
        """The override mapping ``shape``'s scenario point carries.

        Base overrides first (so an axis can deliberately shadow one),
        then the shape's axis assignments; filtered to the paths that
        resolve on the shape's system, matching what :meth:`config`
        built — the worker rebuilds an identical configuration from
        names alone.
        """
        base_config = get_system(shape.system).factory()
        merged = {path: value for path, value in self.overrides.items()
                  if override_applies(base_config, path)}
        merged.update(shape.overrides)
        return merged

    def scenario(self, shape: Shape,
                 fidelity_value: Optional[object] = None) -> Scenario:
        """Wrap one shape (at one fidelity rung) as a one-point Scenario."""
        params = dict(self.params)
        grid: Dict[str, object] = {}
        if fidelity_value is not None:
            if self.fidelity is None:
                raise SpaceError(
                    f"space {self.name!r} declares no fidelity ladder")
            params.pop(self.fidelity.param, None)
            grid[self.fidelity.param] = (fidelity_value,)
        return Scenario(workload=self.workload, systems=(shape.system,),
                        grid=grid or None, params=params,
                        overrides=self.effective_overrides(shape),
                        seed=self.seed, name=self.name)


# --------------------------------------------------------------------------- #
# File loading
# --------------------------------------------------------------------------- #
_TOP_KEYS = frozenset(("name", "workload", "system", "seed", "params",
                       "overrides", "fidelity", "axes"))
_AXIS_KEYS = frozenset(("path", "kind", "values", "min", "max", "step",
                        "factor"))
_AXIS_KINDS = ("categorical", "size", "bool")


def _coerce_size(label: str, value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise SpaceError(f"{label} must be a size (int or '128KiB' string), "
                         f"got {type(value).__name__}")
    try:
        return parse_size(value) if isinstance(value, str) else int(value)
    except ValueError as error:
        raise SpaceError(f"{label}: {error}") from error


def _axis_from_mapping(document: Mapping[str, object], where: str) -> object:
    unknown = set(document) - _AXIS_KEYS
    if unknown:
        raise SpaceError(
            f"{where}: unknown axis keys {', '.join(sorted(unknown))}; "
            f"valid keys: {', '.join(sorted(_AXIS_KEYS))}")
    path = document.get("path")
    if not isinstance(path, str) or not path:
        raise SpaceError(f"{where}: every axis needs a non-empty 'path'")
    kind = document.get("kind", "categorical")
    if kind not in _AXIS_KINDS:
        raise SpaceError(
            f"{where}: unknown axis kind {kind!r}; valid kinds: "
            f"{', '.join(_AXIS_KINDS)}")
    if kind == "bool":
        return BoolAxis(path=path)
    if kind == "categorical":
        values = document.get("values")
        if not isinstance(values, (list, tuple)) or not values:
            raise SpaceError(
                f"{where}: a categorical axis needs a non-empty 'values' "
                "list")
        return CategoricalAxis(path=path, choices=tuple(values))
    if "min" not in document or "max" not in document:
        raise SpaceError(f"{where}: a size axis needs 'min' and 'max'")
    step = document.get("step")
    factor = document.get("factor")
    return SizeAxis(
        path=path,
        minimum=_coerce_size(f"{where}: min", document["min"]),
        maximum=_coerce_size(f"{where}: max", document["max"]),
        step=None if step is None else _coerce_size(f"{where}: step", step),
        factor=None if factor is None else int(factor))  # type: ignore[arg-type]


def space_from_file(path: str) -> ShapeSpace:
    """Load a :class:`ShapeSpace` from a TOML or JSON declaration file."""
    document = load_document(path)
    if not isinstance(document, dict):
        raise SpaceError(
            f"{path}: a space file must be a table/object at top level, "
            f"got {type(document).__name__}")
    unknown = set(document) - _TOP_KEYS
    if unknown:
        raise SpaceError(
            f"{path}: unknown space keys {', '.join(sorted(unknown))}; "
            f"valid keys: {', '.join(sorted(_TOP_KEYS))}")
    workload = document.get("workload")
    if not isinstance(workload, str) or not workload:
        raise SpaceError(f"{path}: a space file needs a 'workload'")
    for key in ("params", "overrides"):
        if key in document and not isinstance(document[key], dict):
            raise SpaceError(f"{path}: {key!r} must be a table/object")
    axes_doc = document.get("axes")
    if not isinstance(axes_doc, list) or not axes_doc:
        raise SpaceError(f"{path}: a space file needs an '[[axes]]' list")
    axes = []
    for position, axis_doc in enumerate(axes_doc):
        where = f"{path}: axes[{position}]"
        if not isinstance(axis_doc, dict):
            raise SpaceError(f"{where}: each axis must be a table/object")
        axes.append(_axis_from_mapping(axis_doc, where))

    fidelity = None
    if "fidelity" in document:
        fidelity_doc = document["fidelity"]
        if not isinstance(fidelity_doc, dict):
            raise SpaceError(f"{path}: 'fidelity' must be a table/object")
        unknown = set(fidelity_doc) - {"param", "values"}
        if unknown:
            raise SpaceError(
                f"{path}: unknown fidelity keys "
                f"{', '.join(sorted(unknown))}; valid keys: param, values")
        param = fidelity_doc.get("param")
        values = fidelity_doc.get("values")
        if not isinstance(param, str) or not param:
            raise SpaceError(f"{path}: fidelity needs a 'param' name")
        if not isinstance(values, (list, tuple)) or not values:
            raise SpaceError(
                f"{path}: fidelity needs a non-empty 'values' list")
        fidelity = Fidelity(param=param, values=tuple(values))

    seed = document.get("seed")
    if seed is not None and (isinstance(seed, bool)
                             or not isinstance(seed, int)):
        raise SpaceError(f"{path}: 'seed' must be an integer")
    name = document.get("name")
    default_name = os.path.splitext(os.path.basename(path))[0]
    try:
        return ShapeSpace(
            workload=workload, system=document.get("system"),  # type: ignore[arg-type]
            axes=axes, params=document.get("params"),  # type: ignore[arg-type]
            overrides=document.get("overrides"),  # type: ignore[arg-type]
            fidelity=fidelity, seed=seed,
            name=str(name) if name is not None else f"dse-{default_name}")
    except SpaceError as error:
        raise SpaceError(f"{path}: {error}") from None
