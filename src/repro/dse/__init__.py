"""``repro.dse`` — budget-aware design-space exploration.

The paper compares exactly two machines; PR 5 turned their memory
hierarchies into pure configuration, and this package turns that
configuration into a *searchable space*:

- :mod:`repro.dse.budget` — SRAM/area/latency cost model and
  admissibility ceilings that prune unbuildable or over-budget shapes
  before any simulation.
- :mod:`repro.dse.space` — typed axes (categorical, sized, boolean) over
  dotted config paths; every shape becomes an ordinary one-point
  :class:`repro.api.Scenario`, never per-shape code.
- :mod:`repro.dse.search` — grid, seeded-random and successive-halving
  strategies over an :class:`~repro.dse.search.Explorer` that serves
  measurements from the :mod:`repro.store` cache and cancels dominated
  in-flight points through the streaming backend API.
- :mod:`repro.dse.frontier` — Pareto extraction over (objective, cost),
  returned as a typed :class:`repro.api.ResultSet`.

The CLI front door is ``repro dse --space shapes.toml --strategy
halving --budget sram=4MiB``; see ``examples/dse_frontier.py`` for the
library API.
"""

from repro.dse.budget import (
    Admissibility,
    Budget,
    BudgetError,
    LevelCost,
    SramLevel,
    area_mm2,
    latency_ns,
    sram_bytes,
    sram_levels,
)
from repro.dse.frontier import FrontierError, frontier_result, pareto
from repro.dse.search import (
    DseError,
    Exploration,
    ExploreStats,
    Explorer,
    GridSearch,
    PrunedShape,
    RandomSearch,
    STRATEGY_NAMES,
    SuccessiveHalving,
    create_strategy,
)
from repro.dse.space import (
    BoolAxis,
    CategoricalAxis,
    Fidelity,
    Shape,
    ShapeSpace,
    SizeAxis,
    SpaceError,
    space_from_file,
)

__all__ = [
    "Admissibility",
    "BoolAxis",
    "Budget",
    "BudgetError",
    "CategoricalAxis",
    "DseError",
    "Exploration",
    "ExploreStats",
    "Explorer",
    "Fidelity",
    "FrontierError",
    "GridSearch",
    "LevelCost",
    "PrunedShape",
    "RandomSearch",
    "STRATEGY_NAMES",
    "Shape",
    "ShapeSpace",
    "SizeAxis",
    "SpaceError",
    "SramLevel",
    "SuccessiveHalving",
    "area_mm2",
    "create_strategy",
    "frontier_result",
    "latency_ns",
    "pareto",
    "space_from_file",
    "sram_bytes",
    "sram_levels",
]
