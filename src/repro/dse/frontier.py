"""Pareto-frontier extraction over (performance, cost) measurements.

The output of a design-space search is not "the best shape" — with two
objectives there rarely is one — but the set of shapes no other shape
beats on *both* axes at once.  :func:`pareto` partitions measurement
rows into that frontier and the dominated remainder;
:func:`frontier_result` wraps the partition as a typed
:class:`repro.api.ResultSet` (groups ``frontier`` and, on request,
``dominated``) so the CLI renders, filters and serialises it exactly
like any sweep's results.

Both metrics are minimised.  Domination is strict: row *b* dominates
row *a* iff ``b.objective <= a.objective`` and ``b.cost <= a.cost`` with
at least one strict inequality — so ties survive together on the
frontier rather than knocking each other out.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.api import ResultSet
from repro.errors import ReproError

__all__ = ["FrontierError", "frontier_result", "pareto"]


class FrontierError(ReproError):
    """Frontier extraction was asked for columns the rows do not carry."""


def _metric(row: Dict[str, object], column: str) -> float:
    try:
        value = row[column]
    except KeyError:
        raise FrontierError(
            f"measurement row has no {column!r} column; columns: "
            f"{', '.join(sorted(map(str, row)))}") from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FrontierError(
            f"frontier metric {column!r} must be numeric, got "
            f"{type(value).__name__} ({value!r})")
    return float(value)


def _dominates(b: Tuple[float, float], a: Tuple[float, float]) -> bool:
    return b[0] <= a[0] and b[1] <= a[1] and (b[0] < a[0] or b[1] < a[1])


def pareto(rows: Sequence[Dict[str, object]], objective: str, cost: str
           ) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Split ``rows`` into (frontier, dominated), both metrics minimised.

    The frontier is sorted by (cost, objective, original position) —
    cheapest first, so rendered frontiers read as a price ladder; the
    dominated rows keep their original order.  Input order only breaks
    exact metric ties, so the partition is deterministic for any
    deterministic measurement set.
    """
    metrics = [( _metric(row, objective), _metric(row, cost))
               for row in rows]
    frontier: List[Tuple[float, float, int]] = []
    dominated: List[Dict[str, object]] = []
    for position, point in enumerate(metrics):
        if any(_dominates(other, point)
               for index, other in enumerate(metrics) if index != position):
            dominated.append(rows[position])
        else:
            frontier.append((point[1], point[0], position))
    frontier.sort()
    return [rows[position] for _, _, position in frontier], dominated


def frontier_result(rows: Sequence[Dict[str, object]], objective: str,
                    cost: str, include_dominated: bool = False) -> ResultSet:
    """Wrap the Pareto partition of ``rows`` as a typed :class:`ResultSet`."""
    front, rest = pareto(rows, objective, cost)
    groups: Dict[str, List[Dict[str, object]]] = {"frontier": front}
    if include_dominated:
        groups["dominated"] = rest
    return ResultSet(groups=groups)
