"""Budget model for design-space exploration: SRAM, area and latency costs.

The paper's two machines are single points in a much larger
memory-hierarchy space; exploring it means knowing which shapes are even
*buildable* before burning simulation time on them.  Following the lumos
``HeterogSys`` pattern (a system budget — area, power, bandwidth — that
constrains which core mixes are admissible), this module prices a
configuration's on-chip SRAM:

- :func:`sram_levels` enumerates every SRAM structure of a
  :class:`~repro.config.CCSVMSystemConfig` or
  :class:`~repro.config.APUSystemConfig` — per-core L1s, the shared L2
  (or private L2s), the optional L3, GPU local stores, TLB arrays — as
  typed :class:`SramLevel` records;
- :class:`LevelCost` turns a level into mm² (linear in capacity with an
  associativity penalty) and an access-latency estimate (logarithmic in
  capacity: each doubling adds decode/wordline depth);
- :class:`Budget` holds the chip-wide ceilings (total SRAM bytes, area)
  and :meth:`Budget.check` returns a typed :class:`Admissibility` verdict
  — the pruning gate the search strategies consult *before* any point is
  dispatched.

Costs are deliberately simple analytical functions (this is a behavioural
simulator, not a floorplanner); what matters for the search is that they
are deterministic, monotone in capacity, and cheap enough to evaluate for
every shape in a space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.config import (
    KB,
    MB,
    APUSystemConfig,
    CCSVMSystemConfig,
    parse_size,
)
from repro.errors import ReproError

__all__ = [
    "TLB_ENTRY_BYTES",
    "Admissibility",
    "Budget",
    "BudgetError",
    "LevelCost",
    "SramLevel",
    "area_mm2",
    "latency_ns",
    "sram_bytes",
    "sram_levels",
]


class BudgetError(ReproError):
    """A budget declaration or admissibility query was invalid."""


#: Bytes one TLB entry occupies (virtual tag + physical frame + flags).
TLB_ENTRY_BYTES = 16


@dataclass(frozen=True)
class SramLevel:
    """One SRAM structure of a system configuration.

    ``size_bytes`` is the capacity of a single instance; ``instances``
    counts how many the chip carries (e.g. one L1 per core).
    """

    name: str             #: dotted label, e.g. ``"cpu.l1"`` or ``"l2"``
    size_bytes: int       #: capacity per instance
    associativity: int    #: set associativity (1 for direct-mapped arrays)
    instances: int = 1    #: copies of this structure on the chip

    @property
    def total_bytes(self) -> int:
        """Capacity across every instance."""
        return self.size_bytes * self.instances


@dataclass(frozen=True)
class LevelCost:
    """Per-level cost functions: capacity → area, capacity → latency.

    Area grows linearly with capacity (``sram_mm2_per_mib``) with a small
    relative penalty per extra way (comparators, wider tag arrays);
    latency grows with ``log2`` of the capacity (every doubling adds one
    stage of decode/wordline depth).  The defaults are loosely calibrated
    to a ~32 nm node — the A8-3850's — but the *absolute* numbers matter
    far less than the ordering they induce over shapes.
    """

    sram_mm2_per_mib: float = 1.2       #: SRAM array area per MiB
    assoc_penalty_per_way: float = 0.02  #: relative area per way beyond 1
    latency_base_ns: float = 0.3        #: access latency of a tiny array
    latency_ns_per_doubling: float = 0.12  #: added per capacity doubling

    def level_area_mm2(self, level: SramLevel) -> float:
        """Area of every instance of ``level``, in mm²."""
        mib = level.size_bytes / MB
        ways = max(level.associativity - 1, 0)
        scale = 1.0 + self.assoc_penalty_per_way * ways
        return level.instances * mib * self.sram_mm2_per_mib * scale

    def level_latency_ns(self, level: SramLevel) -> float:
        """Estimated access latency of one instance of ``level``, in ns."""
        doublings = math.log2(max(level.size_bytes / KB, 1.0))
        return self.latency_base_ns \
            + self.latency_ns_per_doubling * max(doublings, 0.0)


def sram_levels(config: object) -> Tuple[SramLevel, ...]:
    """Every SRAM structure of ``config``, in a stable declaration order.

    Understands both of the paper's system shapes; any other configuration
    type raises :class:`BudgetError` (the budget model prices memory
    hierarchies, not arbitrary dataclasses).
    """
    levels: List[SramLevel] = []
    if isinstance(config, CCSVMSystemConfig):
        levels.append(SramLevel("cpu.l1", config.cpu.l1_size_bytes,
                                config.cpu.l1_associativity,
                                config.cpu.count))
        levels.append(SramLevel("mttop.l1", config.mttop.l1_size_bytes,
                                config.mttop.l1_associativity,
                                config.mttop.count))
        levels.append(SramLevel("l2", config.l2.total_size_bytes,
                                config.l2.associativity))
        if config.l3.enabled:
            levels.append(SramLevel("l3", config.l3.total_size_bytes,
                                    config.l3.associativity))
        if config.tlb_enabled:
            levels.append(SramLevel(
                "cpu.tlb", config.cpu.tlb_entries * TLB_ENTRY_BYTES, 1,
                config.cpu.count))
            levels.append(SramLevel(
                "mttop.tlb", config.mttop.tlb_entries * TLB_ENTRY_BYTES, 1,
                config.mttop.count))
        return tuple(levels)
    if isinstance(config, APUSystemConfig):
        levels.append(SramLevel("cpu.l1", config.cpu.l1_size_bytes,
                                config.cpu.l1_associativity,
                                config.cpu.count))
        l2_instances = 1 if config.cpu.l2_shared else config.cpu.count
        levels.append(SramLevel("cpu.l2", config.cpu.l2_size_bytes,
                                config.cpu.l2_associativity, l2_instances))
        levels.append(SramLevel("gpu.local", config.gpu.local_memory_bytes,
                                1, config.gpu.simd_units))
        levels.append(SramLevel(
            "cpu.tlb", config.cpu.tlb_entries * TLB_ENTRY_BYTES, 1,
            config.cpu.count))
        return tuple(levels)
    raise BudgetError(
        f"cannot price SRAM of a {type(config).__name__}; expected a "
        "CCSVMSystemConfig or APUSystemConfig")


def sram_bytes(config: object) -> int:
    """Total on-chip SRAM of ``config``, in bytes."""
    return sum(level.total_bytes for level in sram_levels(config))


def area_mm2(config: object, cost: Optional[LevelCost] = None) -> float:
    """Total SRAM area of ``config``, in mm²."""
    cost = cost or LevelCost()
    return sum(cost.level_area_mm2(level) for level in sram_levels(config))


def latency_ns(config: object, cost: Optional[LevelCost] = None) -> float:
    """Summed per-level access-latency estimate of ``config``, in ns.

    A scalar proxy for how *deep* the hierarchy is: a hit walks one level,
    a miss walks several, so the sum over levels bounds the walk and
    orders shapes by their worst-case on-chip traversal.
    """
    cost = cost or LevelCost()
    return sum(cost.level_latency_ns(level) for level in sram_levels(config))


@dataclass(frozen=True)
class Admissibility:
    """The verdict of one budget check, with the measured costs."""

    admissible: bool
    sram_bytes: int
    area_mm2: float
    reason: Optional[str] = None  #: set when inadmissible


@dataclass(frozen=True)
class Budget:
    """Chip-wide ceilings a shape must fit under to be simulated at all.

    ``None`` ceilings are unconstrained; an empty budget admits every
    shape (but still prices it, so cost metrics stay available to the
    frontier).
    """

    sram_bytes: Optional[int] = None  #: total on-chip SRAM ceiling
    area_mm2: Optional[float] = None  #: total SRAM area ceiling (mm²)
    cost: LevelCost = field(default_factory=LevelCost)

    #: The keys :meth:`parse` accepts on the ``--budget`` flag.
    KEYS = ("sram", "area")

    @classmethod
    def parse(cls, pairs: Sequence[str],
              cost: Optional[LevelCost] = None) -> "Budget":
        """Build a budget from CLI pairs like ``["sram=4MiB", "area=50"]``.

        Each element may itself be comma-separated (``"sram=4MiB,area=50"``)
        so the flag works both repeated and inline.  ``sram`` values take
        the usual size suffixes (:func:`repro.config.parse_size`); ``area``
        is mm² as a plain number.
        """
        values: dict = {}
        for chunk in pairs:
            for pair in chunk.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, sep, value = pair.partition("=")
                key = key.strip().lower()
                if not sep or not key or key not in cls.KEYS:
                    raise BudgetError(
                        f"--budget expects KEY=VALUE with KEY one of "
                        f"{', '.join(cls.KEYS)}; got {pair!r}")
                try:
                    if key == "sram":
                        values["sram_bytes"] = parse_size(value)
                    else:
                        values["area_mm2"] = float(value)
                except ValueError:
                    raise BudgetError(
                        f"--budget {key}: cannot parse {value!r}") from None
        return cls(cost=cost or LevelCost(), **values)

    def describe(self) -> str:
        """A short human-readable rendering (for summaries and errors)."""
        parts = []
        if self.sram_bytes is not None:
            parts.append(f"sram<={self.sram_bytes / KB:.0f}KiB")
        if self.area_mm2 is not None:
            parts.append(f"area<={self.area_mm2:g}mm2")
        return ",".join(parts) or "unconstrained"

    def check(self, config: object) -> Admissibility:
        """Price ``config`` and test it against every ceiling."""
        total = sram_bytes(config)
        area = area_mm2(config, self.cost)
        if self.sram_bytes is not None and total > self.sram_bytes:
            return Admissibility(
                False, total, area,
                reason=f"total SRAM {total / KB:.0f}KiB exceeds the "
                       f"budget's {self.sram_bytes / KB:.0f}KiB")
        if self.area_mm2 is not None and area > self.area_mm2:
            return Admissibility(
                False, total, area,
                reason=f"SRAM area {area:.2f}mm2 exceeds the budget's "
                       f"{self.area_mm2:g}mm2")
        return Admissibility(True, total, area)


def costs(config: object,
          cost: Optional[LevelCost] = None) -> Mapping[str, object]:
    """Every cost metric of ``config``, keyed by frontier column name."""
    cost = cost or LevelCost()
    return {
        "sram_bytes": sram_bytes(config),
        "area_mm2": round(area_mm2(config, cost), 4),
        "latency_ns": round(latency_ns(config, cost), 4),
    }
