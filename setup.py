"""Setuptools configuration.

Installs the ``repro`` package from ``src/`` and exposes the sweep-harness
CLI both as ``python -m repro`` and as the ``repro`` console script.
"""

from setuptools import find_packages, setup

setup(
    name="repro-hechtman-sorin-ispass13",
    version="1.0.0",
    description="Reproduction of Hechtman & Sorin, 'Evaluating Cache Coherent "
                "Shared Virtual Memory for Heterogeneous Multicore Chips' "
                "(ISPASS 2013)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro=repro.harness.cli:main",
        ],
    },
)
